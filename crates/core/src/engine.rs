//! The query engine: SDS-tree construction and the three evaluation
//! strategies of the paper.
//!
//! * [`QueryEngine::query_naive`] — §2's brute force: refine every node.
//! * [`QueryEngine::query_static`] — §3 / Algorithm 1: build the SDS-tree
//!   (Dijkstra on the transpose rooted at `q`), refine every popped node,
//!   and expand only nodes whose refinement completed (Theorem 1).
//! * [`QueryEngine::query_dynamic`] — §4: delay the candidate decision to
//!   pop time and skip refinement when the Theorem-2 lower bound
//!   `max(height, parent-rank, lcount)` already meets `kRank`.
//! * [`QueryEngine::query_indexed`] — §5 / Algorithms 3–4: additionally
//!   seed `R` from the Reverse Rank Dictionary, take exact ranks from it,
//!   prune on the Check Dictionary, and write every refinement discovery
//!   back into the index.
//!
//! One driver implements all SDS variants; the differences are a bound
//! configuration and an optional index. The engine owns all per-query
//! scratch (generation-stamped), so queries allocate nothing after warm-up.

use std::time::Instant;

use rkranks_graph::{DijkstraWorkspace, Distance, Graph, GraphError, NodeId, RelaxOutcome, Result};

use crate::index::{IndexBuildStats, IndexParams, RkrIndex};
use crate::refine::{refine_rank, refine_rank_unbounded, RefineHooks, RefineOutcome};
use crate::result::{QueryResult, TopKCollector};
use crate::scratch::Stamped;
use crate::spec::{Partition, QuerySpec};
use crate::stats::QueryStats;
use crate::trace::{PopDecision, QueryTrace, TraceEvent};

/// Which Theorem-2 components the dynamic search uses. The parent-rank
/// bound (Lemma 1) is always on — it is what makes the SDS-tree a
/// filter-and-refine structure at all; `height` and `count` match the
/// paper's Dynamic-Height / Dynamic-Count / Dynamic-Three strategies
/// (Tables 12–13).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BoundConfig {
    /// Lemma 2: `Rank(p,q) ≥ depth(p)`.
    pub use_height: bool,
    /// Lemma 4: `Rank(p,q) ≥ lcount(p)` (auto-disabled on directed graphs
    /// and in bichromatic mode, where the lemma does not hold).
    pub use_count: bool,
}

impl BoundConfig {
    /// The paper's "Dynamic-Parent".
    pub const PARENT_ONLY: BoundConfig = BoundConfig {
        use_height: false,
        use_count: false,
    };
    /// The paper's "Dynamic-Count" (parent + count).
    pub const PARENT_COUNT: BoundConfig = BoundConfig {
        use_height: false,
        use_count: true,
    };
    /// The paper's "Dynamic-Height" (parent + height).
    pub const PARENT_HEIGHT: BoundConfig = BoundConfig {
        use_height: true,
        use_count: false,
    };
    /// The paper's "Dynamic-Three" (all components).
    pub const ALL: BoundConfig = BoundConfig {
        use_height: true,
        use_count: true,
    };

    /// Name matching Tables 12–13.
    pub fn name(self) -> &'static str {
        match (self.use_height, self.use_count) {
            (false, false) => "Dynamic-Parent",
            (false, true) => "Dynamic-Count",
            (true, false) => "Dynamic-Height",
            (true, true) => "Dynamic-Three",
        }
    }
}

impl Default for BoundConfig {
    fn default() -> Self {
        BoundConfig::ALL
    }
}

/// Algorithm selector for the convenience dispatcher [`QueryEngine::query`].
#[derive(Debug)]
pub enum Algorithm<'i> {
    /// §2 brute force.
    Naive,
    /// §3 static SDS-tree.
    Static,
    /// §4 dynamic bounded SDS-tree.
    Dynamic(BoundConfig),
    /// §5 dynamic SDS-tree with the (mutated) index.
    Indexed(&'i mut RkrIndex, BoundConfig),
}

/// Reusable query-evaluation state bound to one graph.
pub struct QueryEngine<'g> {
    graph: &'g Graph,
    /// `Some` only for directed graphs (undirected graphs are their own
    /// transpose; we avoid the copy).
    transpose: Option<Graph>,
    partition: Option<Partition>,
    sds_ws: DijkstraWorkspace,
    refine_ws: DijkstraWorkspace,
    /// SDS-tree parent of each frontier/settled node.
    pred: Stamped<u32>,
    /// Counted-class intermediate-node depth (degenerates to `depth - 1`
    /// monochromatically); the Lemma-2 bound is `depth2 + 1`.
    depth2: Stamped<u32>,
    /// Effective rank lower bound of each processed node (exact rank when
    /// refined) — what descendants inherit as their "parent rank".
    eff_lb: Stamped<u32>,
    /// Lemma-4 visit counters.
    lcount: Stamped<u32>,
    /// Marks nodes currently credited in `R` (prevents double offers when
    /// the index seeds the collector).
    in_result: Stamped<bool>,
}

impl<'g> QueryEngine<'g> {
    /// Monochromatic engine (Definition 2).
    pub fn new(graph: &'g Graph) -> Self {
        Self::with_partition(graph, None)
    }

    /// Bichromatic engine (Definitions 3–4): `partition`'s `V2` is the
    /// counted/query class, its complement the candidate class.
    pub fn bichromatic(graph: &'g Graph, partition: Partition) -> Self {
        Self::with_partition(graph, Some(partition))
    }

    fn with_partition(graph: &'g Graph, partition: Option<Partition>) -> Self {
        let n = graph.num_nodes();
        let transpose = graph.is_directed().then(|| graph.transpose());
        QueryEngine {
            graph,
            transpose,
            partition,
            sds_ws: DijkstraWorkspace::new(n),
            refine_ws: DijkstraWorkspace::new(n),
            pred: Stamped::new(n as usize, u32::MAX),
            depth2: Stamped::new(n as usize, 0),
            eff_lb: Stamped::new(n as usize, 0),
            lcount: Stamped::new(n as usize, 0),
            in_result: Stamped::new(n as usize, false),
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// The active query specification.
    pub fn spec(&self) -> QuerySpec<'_> {
        match &self.partition {
            Some(p) => QuerySpec::Bichromatic(p),
            None => QuerySpec::Mono,
        }
    }

    /// Build an index matching this engine's query spec.
    pub fn build_index(&self, params: &IndexParams) -> (RkrIndex, IndexBuildStats) {
        RkrIndex::build(self.graph, self.spec(), params)
    }

    /// Dispatch on an [`Algorithm`] value (used by the experiment harness).
    pub fn query(&mut self, algorithm: Algorithm<'_>, q: NodeId, k: u32) -> Result<QueryResult> {
        match algorithm {
            Algorithm::Naive => self.query_naive(q, k),
            Algorithm::Static => self.query_static(q, k),
            Algorithm::Dynamic(b) => self.query_dynamic(q, k, b),
            Algorithm::Indexed(idx, b) => self.query_indexed(idx, q, k, b),
        }
    }

    /// §2 naive baseline: refine every candidate (with `kRank` early
    /// termination), no SDS-tree.
    pub fn query_naive(&mut self, q: NodeId, k: u32) -> Result<QueryResult> {
        self.validate(q, k)?;
        let start = Instant::now();
        let mut stats = QueryStats::default();
        let mut collector = TopKCollector::new(k);
        let QueryEngine {
            graph,
            partition,
            refine_ws,
            ..
        } = self;
        let spec = spec_of(partition);
        for p in graph.nodes() {
            if p == q || !spec.is_candidate(p) {
                continue;
            }
            if let Some(RefineOutcome::Exact(r)) =
                refine_rank_unbounded(graph, spec, refine_ws, p, q, collector.k_rank(), &mut stats)
            {
                collector.offer(p, r);
            }
        }
        stats.elapsed = start.elapsed();
        Ok(collector.into_result(stats))
    }

    /// §3 static SDS-tree (Algorithm 1).
    pub fn query_static(&mut self, q: NodeId, k: u32) -> Result<QueryResult> {
        self.run_sds(q, k, None, None, None)
    }

    /// §4 dynamic bounded SDS-tree.
    pub fn query_dynamic(&mut self, q: NodeId, k: u32, bounds: BoundConfig) -> Result<QueryResult> {
        self.run_sds(q, k, Some(bounds), None, None)
    }

    /// [`QueryEngine::query_dynamic`] with a full decision trace (see
    /// [`crate::trace`]).
    pub fn query_dynamic_traced(
        &mut self,
        q: NodeId,
        k: u32,
        bounds: BoundConfig,
    ) -> Result<(QueryResult, QueryTrace)> {
        let mut trace = QueryTrace::default();
        let result = self.run_sds(q, k, Some(bounds), None, Some(&mut trace))?;
        Ok((result, trace))
    }

    /// [`QueryEngine::query_static`] with a full decision trace.
    pub fn query_static_traced(&mut self, q: NodeId, k: u32) -> Result<(QueryResult, QueryTrace)> {
        let mut trace = QueryTrace::default();
        let result = self.run_sds(q, k, None, None, Some(&mut trace))?;
        Ok((result, trace))
    }

    /// [`QueryEngine::query_indexed`] with a full decision trace.
    pub fn query_indexed_traced(
        &mut self,
        index: &mut RkrIndex,
        q: NodeId,
        k: u32,
        bounds: BoundConfig,
    ) -> Result<(QueryResult, QueryTrace)> {
        if k > index.k_max() {
            return Err(GraphError::InvalidQuery(format!(
                "k = {k} exceeds the index's K = {} (the check-dictionary prune would be unsound)",
                index.k_max()
            )));
        }
        let mut trace = QueryTrace::default();
        let result = self.run_sds(q, k, Some(bounds), Some(index), Some(&mut trace))?;
        Ok((result, trace))
    }

    /// §5 dynamic SDS-tree with index (Algorithms 3–4). The index is
    /// updated in place with everything the query learns.
    pub fn query_indexed(
        &mut self,
        index: &mut RkrIndex,
        q: NodeId,
        k: u32,
        bounds: BoundConfig,
    ) -> Result<QueryResult> {
        if k > index.k_max() {
            return Err(GraphError::InvalidQuery(format!(
                "k = {k} exceeds the index's K = {} (the check-dictionary prune would be unsound)",
                index.k_max()
            )));
        }
        self.run_sds(q, k, Some(bounds), Some(index), None)
    }

    fn validate(&self, q: NodeId, k: u32) -> Result<()> {
        self.graph.check_node(q)?;
        if k == 0 {
            return Err(GraphError::InvalidQuery("k must be positive".into()));
        }
        self.spec().validate_query(q)?;
        Ok(())
    }

    /// The shared SDS driver. `dynamic = None` is the static algorithm.
    fn run_sds(
        &mut self,
        q: NodeId,
        k: u32,
        dynamic: Option<BoundConfig>,
        mut index: Option<&mut RkrIndex>,
        mut trace: Option<&mut QueryTrace>,
    ) -> Result<QueryResult> {
        self.validate(q, k)?;
        let start = Instant::now();
        let mut stats = QueryStats::default();
        let mut collector = TopKCollector::new(k);

        let QueryEngine {
            graph,
            transpose,
            partition,
            sds_ws,
            refine_ws,
            pred,
            depth2,
            eff_lb,
            lcount,
            in_result,
        } = self;
        let spec = spec_of(partition);
        let tgraph: &Graph = transpose.as_ref().unwrap_or(graph);
        // Lemma 4 is proven for undirected monochromatic graphs only.
        let count_enabled =
            dynamic.is_some_and(|b| b.use_count) && !graph.is_directed() && !spec.is_bichromatic();

        pred.reset();
        depth2.reset();
        eff_lb.reset();
        lcount.reset();
        in_result.reset();

        // §5.3: seed R (and hence kRank) from the Reverse Rank Dictionary.
        if let Some(idx) = index.as_deref() {
            for &(r, s) in idx.top_entries(q, k) {
                if collector.offer(s, r) {
                    in_result.set(s.index(), true);
                }
            }
        }

        let record = |trace: &mut Option<&mut QueryTrace>, node: NodeId, distance, decision| {
            if let Some(t) = trace.as_deref_mut() {
                t.events.push(TraceEvent {
                    node,
                    distance,
                    decision,
                });
            }
        };

        sds_ws.ensure_capacity(graph.num_nodes());
        sds_ws.begin(q);
        while let Some((u, d)) = sds_ws.settle_next() {
            stats.sds_popped += 1;
            if u == q {
                record(&mut trace, u, d, PopDecision::Root);
                expand(tgraph, spec, q, sds_ws, pred, depth2, &mut stats, u, d);
                continue;
            }
            let parent_lb = match pred.get(u.index()) {
                p if p == u32::MAX || NodeId(p) == q => 0,
                p => eff_lb.get(p as usize),
            };
            let k_rank = collector.k_rank();

            if !spec.is_candidate(u) {
                // Conduit node (bichromatic only): it cannot be a result,
                // but shortest paths run through it. Propagate the ancestor
                // bound; prune the subtree when even the weakest candidate
                // descendant bound meets kRank.
                eff_lb.set(u.index(), parent_lb);
                let descendant_lb = if dynamic.is_some_and(|b| b.use_height) {
                    // any candidate below u has at least depth2(u) + [u
                    // counted] counted intermediates
                    parent_lb.max(depth2.get(u.index()) + spec.is_counted(u) as u32 + 1)
                } else {
                    parent_lb
                };
                let subtree_pruned = dynamic.is_some() && descendant_lb >= k_rank;
                record(&mut trace, u, d, PopDecision::Conduit { subtree_pruned });
                if !subtree_pruned {
                    expand(tgraph, spec, q, sds_ws, pred, depth2, &mut stats, u, d);
                }
                continue;
            }

            if let Some(bounds) = dynamic {
                // Index fast path: the exact rank is already known.
                if let Some(r) = index.as_deref().and_then(|idx| idx.lookup(q, u)) {
                    stats.index_exact_hits += 1;
                    record(&mut trace, u, d, PopDecision::IndexHit { rank: r });
                    eff_lb.set(u.index(), r);
                    if !in_result.get(u.index()) && collector.offer(u, r) {
                        in_result.set(u.index(), true);
                    }
                    if r <= collector.k_rank() {
                        expand(tgraph, spec, q, sds_ws, pred, depth2, &mut stats, u, d);
                    }
                    continue;
                }

                // Theorem 2 (+ check dictionary) lower bound.
                let height_b = if bounds.use_height {
                    depth2.get(u.index()) + 1
                } else {
                    0
                };
                let count_b = if count_enabled {
                    lcount.get(u.index())
                } else {
                    0
                };
                let check_b = index.as_deref().map_or(0, |idx| idx.check(u));
                record_bound_win(&mut stats, parent_lb, height_b, count_b, check_b);
                let lb = parent_lb.max(height_b).max(count_b).max(check_b);
                if lb >= k_rank {
                    stats.pruned_by_bound += 1;
                    record(
                        &mut trace,
                        u,
                        d,
                        PopDecision::BoundPruned {
                            lower_bound: lb,
                            k_rank,
                        },
                    );
                    eff_lb.set(u.index(), lb);
                    continue; // Theorem 1: the subtree is pruned with it
                }
            }

            // Rank refinement (Algorithm 2 / 4).
            let mut hooks = RefineHooks {
                lcount: count_enabled.then_some(&mut *lcount),
                index: index.as_deref_mut(),
            };
            match refine_rank(
                graph, spec, refine_ws, u, q, d, k_rank, &mut hooks, &mut stats,
            ) {
                RefineOutcome::Exact(r) => {
                    eff_lb.set(u.index(), r);
                    let entered = collector.offer(u, r);
                    if entered {
                        in_result.set(u.index(), true);
                    }
                    record(
                        &mut trace,
                        u,
                        d,
                        PopDecision::Refined {
                            rank: r,
                            entered_result: entered,
                        },
                    );
                    // Algorithm 1/3: completed refinement ⇒ expand.
                    expand(tgraph, spec, q, sds_ws, pred, depth2, &mut stats, u, d);
                }
                RefineOutcome::Pruned { lower_bound } => {
                    record(
                        &mut trace,
                        u,
                        d,
                        PopDecision::RefinementPruned { lower_bound },
                    );
                    eff_lb.set(u.index(), lower_bound.max(parent_lb));
                    // Theorem 1: no expansion.
                }
            }
        }

        stats.elapsed = start.elapsed();
        Ok(collector.into_result(stats))
    }
}

fn spec_of(partition: &Option<Partition>) -> QuerySpec<'_> {
    match partition {
        Some(p) => QuerySpec::Bichromatic(p),
        None => QuerySpec::Mono,
    }
}

/// Relax `u`'s out-edges in the transpose graph, recording tree parents and
/// counted-depths for Theorem 2.
#[allow(clippy::too_many_arguments)]
fn expand(
    tgraph: &Graph,
    spec: QuerySpec<'_>,
    q: NodeId,
    sds_ws: &mut DijkstraWorkspace,
    pred: &mut Stamped<u32>,
    depth2: &mut Stamped<u32>,
    stats: &mut QueryStats,
    u: NodeId,
    d: Distance,
) {
    // `u` becomes an intermediate node of everything routed through it; it
    // contributes to the Lemma-2 bound only if it is counted and not `q`
    // (ranks never count the query node or the candidate itself).
    let child_depth2 = depth2.get(u.index()) + (u != q && spec.is_counted(u)) as u32;
    let (targets, weights) = tgraph.out_neighbors(u);
    for (t, w) in targets.iter().zip(weights.iter()) {
        stats.sds_relaxations += 1;
        match sds_ws.relax(*t, d + *w) {
            RelaxOutcome::Inserted | RelaxOutcome::Decreased => {
                pred.set(t.index(), u.0);
                depth2.set(t.index(), child_depth2);
            }
            RelaxOutcome::Unchanged => {}
        }
    }
}

/// Table 11 bookkeeping: which component supplied the max. Ties resolve in
/// the paper's "tight-most first" narrative order: parent, height, count,
/// check.
fn record_bound_win(stats: &mut QueryStats, parent: u32, height: u32, count: u32, check: u32) {
    let best = parent.max(height).max(count).max(check);
    let w = &mut stats.bound_wins;
    if parent == best {
        w.parent += 1;
    } else if height == best {
        w.height += 1;
    } else if count == best {
        w.count += 1;
    } else {
        w.check += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rkranks_graph::{graph_from_edges, EdgeDirection};

    /// 0 is the hub; 1..=3 at distances 1, 2, 3; 4 hangs off 3.
    fn star_tail() -> Graph {
        graph_from_edges(
            EdgeDirection::Undirected,
            [(0, 1, 1.0), (0, 2, 2.0), (0, 3, 3.0), (3, 4, 1.0)],
        )
        .unwrap()
    }

    #[test]
    fn all_algorithms_agree_on_star_tail() {
        let g = star_tail();
        let mut engine = QueryEngine::new(&g);
        for q in g.nodes() {
            for k in 1..=4 {
                let naive = engine.query_naive(q, k).unwrap();
                let stat = engine.query_static(q, k).unwrap();
                let dynamic = engine.query_dynamic(q, k, BoundConfig::ALL).unwrap();
                assert_eq!(naive.ranks(), stat.ranks(), "static q={q} k={k}");
                assert_eq!(naive.ranks(), dynamic.ranks(), "dynamic q={q} k={k}");
            }
        }
    }

    #[test]
    fn dynamic_never_refines_more_than_static() {
        let g = star_tail();
        let mut engine = QueryEngine::new(&g);
        for q in g.nodes() {
            let s = engine.query_static(q, 2).unwrap();
            let d = engine.query_dynamic(q, 2, BoundConfig::ALL).unwrap();
            assert!(
                d.stats.refinement_calls <= s.stats.refinement_calls,
                "q={q}: dynamic {} > static {}",
                d.stats.refinement_calls,
                s.stats.refinement_calls
            );
        }
    }

    #[test]
    fn k_zero_and_bad_nodes_are_rejected() {
        let g = star_tail();
        let mut engine = QueryEngine::new(&g);
        assert!(engine.query_static(NodeId(0), 0).is_err());
        assert!(engine.query_static(NodeId(99), 1).is_err());
        assert!(engine.query_naive(NodeId(0), 0).is_err());
    }

    #[test]
    fn k_larger_than_graph_returns_all_candidates() {
        let g = star_tail();
        let mut engine = QueryEngine::new(&g);
        let r = engine
            .query_dynamic(NodeId(0), 10, BoundConfig::ALL)
            .unwrap();
        assert_eq!(r.entries.len(), 4); // everyone but q
    }

    #[test]
    fn indexed_rejects_k_above_k_max() {
        let g = star_tail();
        let mut engine = QueryEngine::new(&g);
        let mut idx = RkrIndex::empty(g.num_nodes(), 2);
        assert!(engine
            .query_indexed(&mut idx, NodeId(0), 3, BoundConfig::ALL)
            .is_err());
        assert!(engine
            .query_indexed(&mut idx, NodeId(0), 2, BoundConfig::ALL)
            .is_ok());
    }

    #[test]
    fn indexed_empty_index_matches_dynamic_and_learns() {
        let g = star_tail();
        let mut engine = QueryEngine::new(&g);
        let mut idx = RkrIndex::empty(g.num_nodes(), 10);
        for q in g.nodes() {
            let expect = engine.query_dynamic(q, 2, BoundConfig::ALL).unwrap();
            let got = engine
                .query_indexed(&mut idx, q, 2, BoundConfig::ALL)
                .unwrap();
            assert_eq!(expect.ranks(), got.ranks(), "q={q}");
        }
        // the index absorbed refinement results
        assert!(idx.rrd_entries() > 0);
        // a repeat query must still be correct
        let expect = engine
            .query_dynamic(NodeId(0), 2, BoundConfig::ALL)
            .unwrap();
        let got = engine
            .query_indexed(&mut idx, NodeId(0), 2, BoundConfig::ALL)
            .unwrap();
        assert_eq!(expect.ranks(), got.ranks());
    }

    #[test]
    fn directed_graph_uses_transpose() {
        // 0 -> 1 -> 2, plus 2 -> 0 closing the cycle.
        let g = graph_from_edges(
            EdgeDirection::Directed,
            [(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)],
        )
        .unwrap();
        let mut engine = QueryEngine::new(&g);
        for q in g.nodes() {
            let naive = engine.query_naive(q, 2).unwrap();
            let dynamic = engine.query_dynamic(q, 2, BoundConfig::ALL).unwrap();
            assert_eq!(naive.ranks(), dynamic.ranks(), "q={q}");
        }
    }

    #[test]
    fn unreachable_candidates_are_excluded() {
        // 1 -> 0: only node 1 can reach 0; node 2 cannot.
        let g = graph_from_edges(EdgeDirection::Directed, [(1, 0, 1.0), (0, 2, 1.0)]).unwrap();
        let mut engine = QueryEngine::new(&g);
        let r = engine
            .query_dynamic(NodeId(0), 3, BoundConfig::ALL)
            .unwrap();
        assert_eq!(r.nodes(), vec![NodeId(1)]);
        let n = engine.query_naive(NodeId(0), 3).unwrap();
        assert_eq!(n.nodes(), vec![NodeId(1)]);
    }

    #[test]
    fn bound_wins_are_recorded_in_dynamic_mode() {
        let g = star_tail();
        let mut engine = QueryEngine::new(&g);
        let r = engine
            .query_dynamic(NodeId(0), 1, BoundConfig::ALL)
            .unwrap();
        assert!(r.stats.bound_wins.total() > 0);
        let s = engine.query_static(NodeId(0), 1).unwrap();
        assert_eq!(s.stats.bound_wins.total(), 0);
    }

    #[test]
    fn record_bound_win_tie_precedence() {
        let mut stats = QueryStats::default();
        record_bound_win(&mut stats, 2, 2, 1, 0);
        assert_eq!(stats.bound_wins.parent, 1); // parent wins ties
        record_bound_win(&mut stats, 1, 2, 2, 2);
        assert_eq!(stats.bound_wins.height, 1); // then height
        record_bound_win(&mut stats, 0, 1, 2, 2);
        assert_eq!(stats.bound_wins.count, 1); // then count
        record_bound_win(&mut stats, 0, 0, 0, 1);
        assert_eq!(stats.bound_wins.check, 1);
    }

    #[test]
    fn algorithm_dispatcher_matches_direct_calls() {
        let g = star_tail();
        let mut engine = QueryEngine::new(&g);
        let mut idx = RkrIndex::empty(g.num_nodes(), 10);
        let q = NodeId(0);
        let direct = engine.query_dynamic(q, 2, BoundConfig::ALL).unwrap();
        let via_enum = engine
            .query(Algorithm::Dynamic(BoundConfig::ALL), q, 2)
            .unwrap();
        assert_eq!(direct.entries, via_enum.entries);
        let direct = engine.query_naive(q, 2).unwrap();
        let via_enum = engine.query(Algorithm::Naive, q, 2).unwrap();
        assert_eq!(direct.entries, via_enum.entries);
        let via_enum = engine
            .query(Algorithm::Indexed(&mut idx, BoundConfig::ALL), q, 2)
            .unwrap();
        assert_eq!(direct.ranks(), via_enum.ranks());
        let via_enum = engine.query(Algorithm::Static, q, 2).unwrap();
        assert_eq!(direct.ranks(), via_enum.ranks());
    }

    #[test]
    fn traced_queries_match_untraced() {
        let g = star_tail();
        let mut engine = QueryEngine::new(&g);
        let mut idx = RkrIndex::empty(g.num_nodes(), 10);
        for q in g.nodes() {
            let plain = engine.query_dynamic(q, 2, BoundConfig::ALL).unwrap();
            let (traced, trace) = engine.query_dynamic_traced(q, 2, BoundConfig::ALL).unwrap();
            assert_eq!(plain.entries, traced.entries);
            // every pop produced exactly one event
            assert_eq!(trace.events.len() as u64, traced.stats.sds_popped);

            let plain = engine.query_static(q, 2).unwrap();
            let (traced, _) = engine.query_static_traced(q, 2).unwrap();
            assert_eq!(plain.entries, traced.entries);

            let (traced, _) = engine
                .query_indexed_traced(&mut idx, q, 2, BoundConfig::ALL)
                .unwrap();
            assert_eq!(plain.ranks(), traced.ranks());
        }
        // warm index produces index-hit events on a repeat query
        let (_, trace) = engine
            .query_indexed_traced(&mut idx, NodeId(0), 2, BoundConfig::ALL)
            .unwrap();
        assert!(
            !trace.index_hit_nodes().is_empty(),
            "repeat indexed query should hit the dictionary"
        );
    }
}
