//! Query tracing: an event log of every decision the SDS driver makes.
//!
//! Production engines need observability; a reproduction doubly so — the
//! trace is how tests assert the paper's §3/§4 walkthroughs ("the process
//! can terminate here, since the lower bounds of ranks for Frank, Sid and
//! George are already larger than kRank") decision by decision rather than
//! only by final answer.

use rkranks_graph::{Distance, NodeId};

/// What happened to one node popped from the SDS priority queue.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PopDecision {
    /// The query root itself (always expanded).
    Root,
    /// Refinement ran to completion with this exact rank.
    Refined {
        /// The exact `Rank(node, q)`.
        rank: u32,
        /// Whether the node entered the result set `R`.
        entered_result: bool,
    },
    /// Refinement aborted on the `kRank` bound (the paper's `-1`).
    RefinementPruned {
        /// Proven lower bound on the node's rank.
        lower_bound: u32,
    },
    /// The Theorem-2 lower bound met `kRank` before refinement (dynamic
    /// variants only).
    BoundPruned {
        /// The winning lower bound.
        lower_bound: u32,
        /// The `kRank` it met.
        k_rank: u32,
    },
    /// The exact rank came from the Reverse Rank Dictionary (§5.3).
    IndexHit {
        /// The stored exact rank.
        rank: u32,
    },
    /// A bichromatic conduit node (not a candidate; only routes paths).
    Conduit {
        /// Whether its subtree was pruned.
        subtree_pruned: bool,
    },
}

/// One trace event: a pop from the SDS queue and its outcome.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceEvent {
    /// The popped node.
    pub node: NodeId,
    /// Its (final) distance to the query node.
    pub distance: Distance,
    /// What the driver decided.
    pub decision: PopDecision,
}

/// An ordered trace of one query.
#[derive(Clone, Debug, Default)]
pub struct QueryTrace {
    /// Events in pop order.
    pub events: Vec<TraceEvent>,
}

impl QueryTrace {
    /// Nodes that were rank-refined (completed or pruned mid-refinement).
    pub fn refined_nodes(&self) -> Vec<NodeId> {
        self.events
            .iter()
            .filter(|e| {
                matches!(
                    e.decision,
                    PopDecision::Refined { .. } | PopDecision::RefinementPruned { .. }
                )
            })
            .map(|e| e.node)
            .collect()
    }

    /// Nodes skipped entirely by the Theorem-2 bound.
    pub fn bound_pruned_nodes(&self) -> Vec<NodeId> {
        self.events
            .iter()
            .filter(|e| matches!(e.decision, PopDecision::BoundPruned { .. }))
            .map(|e| e.node)
            .collect()
    }

    /// Nodes answered from the index without refinement.
    pub fn index_hit_nodes(&self) -> Vec<NodeId> {
        self.events
            .iter()
            .filter(|e| matches!(e.decision, PopDecision::IndexHit { .. }))
            .map(|e| e.node)
            .collect()
    }

    /// Render a human-readable listing (used by examples and debugging).
    pub fn render(&self, names: Option<&[&str]>) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let name = |n: NodeId| -> String {
            match names {
                Some(ns) if n.index() < ns.len() => ns[n.index()].to_string(),
                _ => n.to_string(),
            }
        };
        for e in &self.events {
            let what = match e.decision {
                PopDecision::Root => "root".to_string(),
                PopDecision::Refined {
                    rank,
                    entered_result,
                } => {
                    format!(
                        "refined -> rank {rank}{}",
                        if entered_result { " (entered R)" } else { "" }
                    )
                }
                PopDecision::RefinementPruned { lower_bound } => {
                    format!(
                        "refinement pruned (rank > {})",
                        lower_bound.saturating_sub(1)
                    )
                }
                PopDecision::BoundPruned {
                    lower_bound,
                    k_rank,
                } => {
                    format!("bound-pruned (LB {lower_bound} >= kRank {k_rank})")
                }
                PopDecision::IndexHit { rank } => format!("index hit -> rank {rank}"),
                PopDecision::Conduit { subtree_pruned } => {
                    format!(
                        "conduit{}",
                        if subtree_pruned {
                            " (subtree pruned)"
                        } else {
                            ""
                        }
                    )
                }
            };
            let _ = writeln!(out, "pop {:<10} d={:<8.4} {what}", name(e.node), e.distance);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> QueryTrace {
        QueryTrace {
            events: vec![
                TraceEvent {
                    node: NodeId(0),
                    distance: 0.0,
                    decision: PopDecision::Root,
                },
                TraceEvent {
                    node: NodeId(1),
                    distance: 1.0,
                    decision: PopDecision::Refined {
                        rank: 3,
                        entered_result: true,
                    },
                },
                TraceEvent {
                    node: NodeId(2),
                    distance: 1.5,
                    decision: PopDecision::BoundPruned {
                        lower_bound: 5,
                        k_rank: 4,
                    },
                },
                TraceEvent {
                    node: NodeId(3),
                    distance: 2.0,
                    decision: PopDecision::IndexHit { rank: 2 },
                },
                TraceEvent {
                    node: NodeId(4),
                    distance: 2.5,
                    decision: PopDecision::RefinementPruned { lower_bound: 6 },
                },
            ],
        }
    }

    #[test]
    fn selectors_partition_events() {
        let t = sample();
        assert_eq!(t.refined_nodes(), vec![NodeId(1), NodeId(4)]);
        assert_eq!(t.bound_pruned_nodes(), vec![NodeId(2)]);
        assert_eq!(t.index_hit_nodes(), vec![NodeId(3)]);
    }

    #[test]
    fn render_with_and_without_names() {
        let t = sample();
        let plain = t.render(None);
        assert!(plain.contains("pop 1"));
        assert!(plain.contains("entered R"));
        assert!(plain.contains("bound-pruned (LB 5 >= kRank 4)"));
        let named = t.render(Some(&["q", "Bob", "Carol", "Dan", "Eve"]));
        assert!(named.contains("pop Bob"));
        assert!(named.contains("index hit -> rank 2"));
    }
}
