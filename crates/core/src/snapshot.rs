//! Durable serving-state snapshots: one integrity-checked bundle holding
//! the committed graph, the learned index, the epoch pair, and the staged
//! write-ahead log.
//!
//! The paper's index is the expensive asset (Table 15: hours of
//! preprocessing on real DBLP) and it keeps sharpening as it serves
//! queries (Table 14) — state a daemon must be able to lay down and pick
//! back up. A [`rkranks_graph::GraphStore`] adds the second half of the
//! problem: after live [`GraphDelta`] commits, the graph on disk and the
//! graph being served have diverged, and an index file alone cannot say
//! which graph its ranks were measured on. The snapshot bundle stores all
//! of it together, so a restarted daemon resumes at exactly the epoch pair
//! it went down with.
//!
//! ## Bundle layout (`rkr-snapshot v1`)
//!
//! Line-oriented text, in the spirit of [`crate::index_io`]'s `v1`/`v2`
//! formats, with length- and checksum-guarded binary-safe sections:
//!
//! ```text
//! rkr-snapshot v1 <graph_epoch> <index_epoch>
//! section graph <byte_len> <fnv64-hex>
//! <byte_len bytes: the committed graph, edge-list text>
//! section index <byte_len> <fnv64-hex>
//! <byte_len bytes: the learned index, rkr-index v1/v2 text>
//! section wal <byte_len> <fnv64-hex>
//! <byte_len bytes: staged-but-uncommitted deltas, one per line>
//! end
//! ```
//!
//! * `graph` is [`rkranks_graph::write_graph`] output for the *committed*
//!   snapshot at `graph_epoch`.
//! * `index` is [`crate::write_index`] output; its graph-epoch tag must
//!   equal the bundle's `graph_epoch` (a `v1` record means epoch 0).
//! * `wal` holds [`GraphDelta::to_wal_line`] records for every staged
//!   delta — updates accepted but not yet committed when the snapshot was
//!   cut. Loading replays them into the staged overlay, so not even
//!   un-merged updates are lost across a restart.
//! * `index_epoch` is [`RkrIndex::epoch`], the cache-keying version
//!   counter, restored via [`RkrIndex::set_epoch`] so "unchanged epoch ⇒
//!   unchanged index" survives the restart.
//!
//! Every section declares its exact byte length and an FNV-1a 64 checksum;
//! [`read_snapshot`] verifies both and fails with a one-line
//! [`GraphError::Parse`] on truncation, corruption, a checksum mismatch,
//! or an index/graph epoch disagreement — a damaged bundle can never
//! produce a silently wrong serving state. [`save_snapshot`] writes
//! atomically ([`rkranks_graph::write_atomic`]), so the file on disk is
//! always a complete bundle.

use std::fs::File;
use std::io::{Read, Write};
use std::path::Path;

use rkranks_graph::{
    read_graph, write_atomic, write_graph, GraphDelta, GraphError, GraphStore, Result,
};

use crate::index::RkrIndex;
use crate::index_io::{read_index, write_index};

/// FNV-1a 64-bit: tiny, dependency-free, and plenty to catch the
/// truncation/bit-rot class of corruption the sections guard against
/// (this is an integrity check, not an authenticity one).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Serialize the full serving state of `store` + `index` as a bundle.
///
/// `index.graph_epoch()` must equal `store.graph_epoch()` — the serving
/// layer maintains that invariant (a graph commit retires the index to a
/// fresh one tagged with the new epoch), and persisting a violation would
/// bake the very mismatch the bundle exists to rule out.
pub fn write_snapshot<W: Write>(store: &GraphStore, index: &RkrIndex, out: W) -> Result<()> {
    assert_eq!(
        index.graph_epoch(),
        store.graph_epoch(),
        "index/graph epoch mismatch"
    );
    let mut w = out;

    let mut graph_bytes = Vec::new();
    write_graph(&store.snapshot(), &mut graph_bytes)?;
    let mut index_bytes = Vec::new();
    write_index(index, &mut index_bytes)?;
    let mut wal_bytes = Vec::new();
    for delta in store.staged_deltas() {
        wal_bytes.extend_from_slice(delta.to_wal_line().as_bytes());
        wal_bytes.push(b'\n');
    }

    writeln!(
        w,
        "rkr-snapshot v1 {} {}",
        store.graph_epoch(),
        index.epoch()
    )?;
    for (name, bytes) in [
        ("graph", &graph_bytes),
        ("index", &index_bytes),
        ("wal", &wal_bytes),
    ] {
        writeln!(w, "section {name} {} {:016x}", bytes.len(), fnv1a64(bytes))?;
        w.write_all(bytes)?;
    }
    writeln!(w, "end")?;
    w.flush()?;
    Ok(())
}

/// Save a bundle to a file (atomically; see
/// [`rkranks_graph::write_atomic`]).
pub fn save_snapshot<P: AsRef<Path>>(store: &GraphStore, index: &RkrIndex, path: P) -> Result<()> {
    write_atomic(path, |w| write_snapshot(store, index, w))
}

/// Byte cursor over the bundle, tracking 1-based line numbers so every
/// rejection points at the offending line like the other text readers do.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn err(&self, message: String) -> GraphError {
        GraphError::Parse {
            line: self.line,
            message,
        }
    }

    /// The next `\n`-terminated header line as UTF-8.
    fn next_line(&mut self) -> Result<&'a str> {
        let rest = &self.buf[self.pos..];
        let end = rest
            .iter()
            .position(|&b| b == b'\n')
            .ok_or_else(|| self.err("truncated bundle: unterminated line".into()))?;
        self.pos += end + 1;
        self.line += 1;
        std::str::from_utf8(&rest[..end]).map_err(|_| self.err("non-UTF-8 header line".into()))
    }

    /// Exactly `len` raw section-payload bytes.
    fn take(&mut self, len: usize) -> Result<&'a [u8]> {
        let rest = &self.buf[self.pos..];
        if rest.len() < len {
            return Err(self.err(format!(
                "truncated bundle: section declares {len} bytes, {} remain",
                rest.len()
            )));
        }
        let bytes = &rest[..len];
        self.pos += len;
        self.line += bytes.iter().filter(|&&b| b == b'\n').count();
        Ok(bytes)
    }
}

/// Deserialize a bundle back into its serving state: a [`GraphStore`] at
/// the persisted graph epoch with the WAL re-staged, and the learned
/// [`RkrIndex`] at the persisted epoch pair.
///
/// Strict by design — see the module docs for everything this rejects.
pub fn read_snapshot<R: Read>(mut input: R) -> Result<(GraphStore, RkrIndex)> {
    let mut buf = Vec::new();
    input.read_to_end(&mut buf)?;
    let mut cur = Cursor {
        buf: &buf,
        pos: 0,
        line: 0,
    };

    // Header: `rkr-snapshot v1 <graph_epoch> <index_epoch>`.
    let header = cur.next_line()?;
    let mut parts = header.split_whitespace();
    if parts.next() != Some("rkr-snapshot") || parts.next() != Some("v1") {
        return Err(cur.err("expected 'rkr-snapshot v1 <graph_epoch> <index_epoch>' header".into()));
    }
    let graph_epoch: u64 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| cur.err("bad graph epoch".into()))?;
    let index_epoch: u64 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| cur.err("bad index epoch".into()))?;
    if parts.next().is_some() {
        return Err(cur.err("trailing tokens in header".into()));
    }

    // The three sections, in fixed order.
    let mut sections: [Option<&[u8]>; 3] = [None, None, None];
    for (slot, expected) in sections.iter_mut().zip(["graph", "index", "wal"]) {
        let line = cur.next_line()?;
        let mut parts = line.split_whitespace();
        if parts.next() != Some("section") || parts.next() != Some(expected) {
            return Err(cur.err(format!(
                "expected 'section {expected} <byte_len> <fnv64-hex>', got '{line}'"
            )));
        }
        let len: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| cur.err(format!("bad byte length for section '{expected}'")))?;
        let declared = parts
            .next()
            .and_then(|s| u64::from_str_radix(s, 16).ok())
            .ok_or_else(|| cur.err(format!("bad checksum for section '{expected}'")))?;
        let bytes = cur.take(len)?;
        let actual = fnv1a64(bytes);
        if actual != declared {
            return Err(cur.err(format!(
                "section '{expected}' checksum mismatch \
                 (declared {declared:016x}, computed {actual:016x}): bundle is corrupt"
            )));
        }
        *slot = Some(bytes);
    }
    let [graph_bytes, index_bytes, wal_bytes] = sections.map(|s| s.expect("all sections read"));
    let end = cur.next_line()?;
    if end.trim() != "end" {
        return Err(cur.err(format!("expected 'end' trailer, got '{end}'")));
    }

    // Graph: the committed snapshot, restored at the persisted epoch.
    let graph = read_graph(graph_bytes)?;
    let mut store = GraphStore::restore(graph, graph_epoch);

    // Index: validated like any index file, then cross-checked against the
    // bundle — a mismatched tag or node universe means the sections do not
    // belong together, which is exactly the silent hazard to refuse.
    let mut index = read_index(index_bytes)?;
    if index.graph_epoch() != graph_epoch {
        return Err(GraphError::Parse {
            line: 1,
            message: format!(
                "index section is tagged for graph epoch {} but the bundle is at {graph_epoch}",
                index.graph_epoch()
            ),
        });
    }
    if index.num_nodes() != store.num_nodes() {
        return Err(GraphError::Parse {
            line: 1,
            message: format!(
                "index covers {} nodes but the graph section has {}",
                index.num_nodes(),
                store.num_nodes()
            ),
        });
    }
    index.set_epoch(index_epoch);

    // WAL: re-stage every persisted delta. `stage_all` re-validates each
    // one against the restored graph, so a WAL that does not apply cleanly
    // is reported as corruption, not silently skipped.
    let mut wal = Vec::new();
    let mut line_no = 0;
    for line in std::str::from_utf8(wal_bytes)
        .map_err(|_| GraphError::Parse {
            line: 1,
            message: "non-UTF-8 bytes in the wal section".into(),
        })?
        .lines()
    {
        line_no += 1;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        wal.push(GraphDelta::parse_wal_line(t, line_no)?);
    }
    store.stage_all(&wal).map_err(|e| GraphError::Parse {
        line: 1,
        message: format!("wal section does not apply to the graph section: {e}"),
    })?;

    Ok((store, index))
}

/// Load a bundle from a file.
pub fn load_snapshot<P: AsRef<Path>>(path: P) -> Result<(GraphStore, RkrIndex)> {
    read_snapshot(File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rkranks_graph::{graph_from_edges, EdgeDirection, NodeId};

    fn diamond_store() -> GraphStore {
        let g = graph_from_edges(
            EdgeDirection::Undirected,
            [(0, 1, 1.0), (0, 2, 2.0), (1, 3, 1.0), (2, 3, 1.0)],
        )
        .unwrap();
        GraphStore::new(g)
    }

    fn round_trip(store: &GraphStore, index: &RkrIndex) -> (GraphStore, RkrIndex) {
        let mut buf = Vec::new();
        write_snapshot(store, index, &mut buf).unwrap();
        read_snapshot(&buf[..]).unwrap()
    }

    #[test]
    fn fresh_state_round_trips() {
        let store = diamond_store();
        let index = RkrIndex::empty(store.num_nodes(), 8);
        let (store2, index2) = round_trip(&store, &index);
        assert_eq!(*store2.snapshot(), *store.snapshot());
        assert_eq!(store2.graph_epoch(), 0);
        assert_eq!(index2.num_nodes(), 4);
        assert_eq!(index2.epoch(), 0);
        assert_eq!(index2.graph_epoch(), 0);
    }

    #[test]
    fn evolved_state_round_trips_with_the_epoch_pair() {
        let mut store = diamond_store();
        store
            .apply(&[GraphDelta::AddEdge { u: 1, v: 2, w: 0.5 }])
            .unwrap();
        let mut index = RkrIndex::empty(store.num_nodes(), 8);
        index.set_graph_epoch(store.graph_epoch());
        index.offer(NodeId(0), NodeId(1), 2);
        index.raise_check(NodeId(1), 3);
        index.set_epoch(5);

        let (store2, index2) = round_trip(&store, &index);
        assert_eq!(store2.graph_epoch(), 1);
        assert_eq!(*store2.snapshot(), *store.snapshot());
        assert_eq!(index2.graph_epoch(), 1);
        assert_eq!(index2.epoch(), 5, "index epoch must survive the restart");
        assert_eq!(index2.lookup(NodeId(0), NodeId(1)), Some(2));
        assert_eq!(index2.check(NodeId(1)), 3);
    }

    #[test]
    fn staged_wal_replays_into_the_restored_store() {
        let mut store = diamond_store();
        store
            .stage_all(&[
                GraphDelta::AddNode,
                GraphDelta::AddEdge { u: 4, v: 0, w: 0.5 },
                GraphDelta::RemoveEdge { u: 2, v: 3 },
                GraphDelta::Reweight { u: 0, v: 1, w: 9.0 },
            ])
            .unwrap();
        let index = RkrIndex::empty(store.num_nodes(), 8);

        let (mut store2, _) = round_trip(&store, &index);
        assert_eq!(store2.pending_deltas(), store.pending_deltas());
        assert_eq!(store2.effective_num_nodes(), 5);
        // committing both stores lands on identical graphs and epochs
        assert_eq!(*store2.commit(), *store.commit());
        assert_eq!(store2.graph_epoch(), store.graph_epoch());
    }

    #[test]
    fn truncation_and_corruption_are_one_line_errors() {
        let mut store = diamond_store();
        store
            .stage(GraphDelta::AddEdge { u: 1, v: 2, w: 0.5 })
            .unwrap();
        let index = RkrIndex::empty(store.num_nodes(), 8);
        let mut buf = Vec::new();
        write_snapshot(&store, &index, &mut buf).unwrap();

        // any strict prefix must be rejected (cut at several depths:
        // mid-header, mid-section-payload, before the trailer)
        for cut in [5, buf.len() / 4, buf.len() / 2, buf.len() - 2] {
            assert!(
                matches!(read_snapshot(&buf[..cut]), Err(GraphError::Parse { .. })),
                "accepted a bundle truncated to {cut} bytes"
            );
        }

        // flip one payload byte: the section checksum must catch it (pick
        // a weight digit so the graph parser alone would not object)
        let text = String::from_utf8(buf.clone()).unwrap();
        let pos = text.find(" 2 ").expect("weight 2 in the graph section");
        let mut bad = buf.clone();
        bad[pos + 1] = b'3';
        let err = read_snapshot(&bad[..]).unwrap_err();
        assert!(
            err.to_string().contains("checksum mismatch"),
            "expected a checksum error, got: {err}"
        );

        // garbage headers
        assert!(read_snapshot(&b"rkr-snapshot v2 0 0\nend\n"[..]).is_err());
        assert!(read_snapshot(&b"not a snapshot\n"[..]).is_err());
        assert!(read_snapshot(&b""[..]).is_err());
    }

    #[test]
    fn epoch_and_universe_mismatches_are_rejected() {
        let store = diamond_store();
        let index = RkrIndex::empty(store.num_nodes(), 8);
        let mut buf = Vec::new();
        write_snapshot(&store, &index, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();

        // doctor the bundle header to claim graph epoch 7: the index
        // section (tagged 0) no longer matches
        let doctored = text.replacen("rkr-snapshot v1 0 0", "rkr-snapshot v1 7 0", 1);
        let err = read_snapshot(doctored.as_bytes()).unwrap_err();
        assert!(
            err.to_string().contains("graph epoch"),
            "expected an epoch mismatch error, got: {err}"
        );
    }

    #[test]
    fn wal_that_does_not_apply_is_corruption() {
        let store = diamond_store();
        let index = RkrIndex::empty(store.num_nodes(), 8);
        let mut buf = Vec::new();
        write_snapshot(&store, &index, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();

        // splice in a WAL that removes a non-existent edge (checksum and
        // length recomputed, so only the semantic replay can object)
        let wal = "rm 1 2\n";
        let doctored = text.replacen(
            &format!("section wal 0 {:016x}\n", fnv1a64(b"")),
            &format!(
                "section wal {} {:016x}\n{wal}",
                wal.len(),
                fnv1a64(wal.as_bytes())
            ),
            1,
        );
        let err = read_snapshot(doctored.as_bytes()).unwrap_err();
        assert!(
            err.to_string().contains("does not apply"),
            "expected a WAL replay error, got: {err}"
        );
    }

    #[test]
    #[should_panic(expected = "epoch mismatch")]
    fn writer_refuses_mismatched_epochs() {
        let mut store = diamond_store();
        store
            .apply(&[GraphDelta::AddEdge { u: 1, v: 2, w: 0.5 }])
            .unwrap();
        // index still tagged epoch 0 — persisting this would bake in the
        // silent mismatch the bundle exists to prevent
        let index = RkrIndex::empty(store.num_nodes(), 8);
        let mut buf = Vec::new();
        let _ = write_snapshot(&store, &index, &mut buf);
    }

    #[test]
    fn file_round_trip_is_atomic() {
        let dir = std::env::temp_dir().join(format!("rkranks-snapshot-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.rkrs");
        let store = diamond_store();
        let index = RkrIndex::empty(store.num_nodes(), 8);
        save_snapshot(&store, &index, &path).unwrap();
        let (store2, _) = load_snapshot(&path).unwrap();
        assert_eq!(*store2.snapshot(), *store.snapshot());
        // overwriting an existing snapshot goes through the same
        // temp-and-rename path
        save_snapshot(&store, &index, &path).unwrap();
        assert!(load_snapshot(&path).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
