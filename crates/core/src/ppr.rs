//! Extension: reverse k-ranks under Personalized-PageRank proximity.
//!
//! The paper closes with "in the future, we plan to study reverse k-ranks
//! queries for other node similarity measures (i.e. PageRank, Personalized
//! PageRank and SimRank), which require radically different approaches"
//! (§8). This module prototypes that direction: proximity of `t` from `s`
//! is `PPR_s(t)` (higher = closer), so
//!
//! ```text
//! RankPPR(s, t) = |{ v ≠ s : PPR_s(v) > PPR_s(t) }| + 1
//! ```
//!
//! and the reverse k-ranks query returns the `k` nodes ranking `q` best
//! under that measure. Because PPR has no Dijkstra-style incremental
//! browse, the SDS pruning framework indeed does not transfer — we provide
//! the exact baseline (one forward-push sweep per node, with a `kRank`
//! shortcut on the *rank position*, not the traversal) as the reference
//! point that future pruning work would be measured against.

use rkranks_graph::ppr::{ppr_push, PprParams};
use rkranks_graph::{Graph, GraphError, NodeId, Result};

use crate::result::{QueryResult, TopKCollector};
use crate::stats::QueryStats;
use std::time::Instant;

/// `RankPPR(s, t)`: position of `t` in `s`'s PPR ordering (ties share the
/// better rank, mirroring Definition 1's strict-inequality semantics).
/// `None` when `t` has zero PPR mass from `s` (unreachable by the walk).
pub fn ppr_rank(graph: &Graph, s: NodeId, t: NodeId, params: &PprParams) -> Option<u32> {
    let scores = ppr_push(graph, s, params);
    let t_score = scores.iter().find(|&&(v, _)| v == t).map(|&(_, p)| p)?;
    let higher = scores
        .iter()
        .filter(|&&(v, p)| v != s && v != t && p > t_score)
        .count() as u32;
    Some(higher + 1)
}

/// Reverse k-ranks under PPR proximity: the `k` nodes `p` minimizing
/// `RankPPR(p, q)`.
pub fn reverse_k_ranks_ppr(
    graph: &Graph,
    q: NodeId,
    k: u32,
    params: &PprParams,
) -> Result<QueryResult> {
    graph.check_node(q)?;
    if k == 0 {
        return Err(GraphError::InvalidQuery("k must be positive".into()));
    }
    let start = Instant::now();
    let mut stats = QueryStats::default();
    let mut collector = TopKCollector::new(k);
    for p in graph.nodes() {
        if p == q {
            continue;
        }
        stats.refinement_calls += 1;
        let scores = ppr_push(graph, p, params);
        let Some(q_score) = scores.iter().find(|&&(v, _)| v == q).map(|&(_, s)| s) else {
            continue;
        };
        // Count nodes strictly above q's score, aborting once past kRank.
        let k_rank = collector.k_rank();
        let mut higher = 0u32;
        let mut pruned = false;
        for &(v, s) in &scores {
            if v != p && v != q && s > q_score {
                higher += 1;
                if k_rank != u32::MAX && higher + 1 > k_rank {
                    pruned = true;
                    break;
                }
            }
        }
        if pruned {
            stats.refinements_pruned += 1;
            continue;
        }
        collector.offer(p, higher + 1);
    }
    stats.elapsed = start.elapsed();
    Ok(collector.into_result(stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rkranks_graph::{graph_from_edges, EdgeDirection};

    fn params() -> PprParams {
        PprParams {
            alpha: 0.15,
            epsilon: 1e-9,
        }
    }

    /// Hub 0 strongly tied to 1, weakly to 2 and 3; 2-3 tied to each other.
    fn sample() -> Graph {
        graph_from_edges(
            EdgeDirection::Undirected,
            [(0, 1, 10.0), (0, 2, 1.0), (0, 3, 1.0), (2, 3, 5.0)],
        )
        .unwrap()
    }

    #[test]
    fn ppr_rank_basics() {
        let g = sample();
        // From 0, node 1 carries the most walk mass: rank 1.
        assert_eq!(ppr_rank(&g, NodeId(0), NodeId(1), &params()), Some(1));
        let r2 = ppr_rank(&g, NodeId(0), NodeId(2), &params()).unwrap();
        let r3 = ppr_rank(&g, NodeId(0), NodeId(3), &params()).unwrap();
        // 2 and 3 are symmetric around 0; their exact PPR scores tie, but
        // the push approximation may resolve the tie either way, so they
        // occupy positions {2} (shared) or {2, 3}.
        assert_eq!(r2.min(r3), 2);
        assert!(r2.max(r3) <= 3);
    }

    #[test]
    fn ppr_rank_unreachable() {
        let g = graph_from_edges(EdgeDirection::Directed, [(0, 1, 1.0)]).unwrap();
        assert_eq!(ppr_rank(&g, NodeId(1), NodeId(0), &params()), None);
    }

    #[test]
    fn reverse_ppr_matches_per_pair_ranks() {
        let g = sample();
        let q = NodeId(1);
        let res = reverse_k_ranks_ppr(&g, q, 2, &params()).unwrap();
        // brute force over pair ranks
        let mut expect: Vec<(u32, NodeId)> = g
            .nodes()
            .filter(|&p| p != q)
            .filter_map(|p| ppr_rank(&g, p, q, &params()).map(|r| (r, p)))
            .collect();
        expect.sort_unstable();
        expect.truncate(2);
        assert_eq!(
            res.ranks(),
            expect.iter().map(|&(r, _)| r).collect::<Vec<_>>()
        );
    }

    #[test]
    fn rejects_invalid_queries() {
        let g = sample();
        assert!(reverse_k_ranks_ppr(&g, NodeId(0), 0, &params()).is_err());
        assert!(reverse_k_ranks_ppr(&g, NodeId(42), 1, &params()).is_err());
    }

    #[test]
    fn hub_is_everyones_top_choice() {
        // In the star, every leaf ranks the hub 1st; reverse 2-ranks of the
        // hub returns leaves with rank 1.
        let g = graph_from_edges(
            EdgeDirection::Undirected,
            [(0, 1, 1.0), (0, 2, 1.0), (0, 3, 1.0)],
        )
        .unwrap();
        let res = reverse_k_ranks_ppr(&g, NodeId(0), 2, &params()).unwrap();
        assert_eq!(res.ranks(), vec![1, 1]);
    }
}
