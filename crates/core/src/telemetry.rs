//! Hand-rolled telemetry: lock-free histograms and a typed metric registry.
//!
//! The serving daemon needs to answer "where does time go, per strategy?"
//! without pulling in a metrics crate (the build is offline). This module
//! provides the three classic instrument kinds:
//!
//! - [`Counter`] — a monotone `AtomicU64` (queries served, merges run).
//! - [`Gauge`] — a set-to-current-value `AtomicU64` (cache bytes, open
//!   connections).
//! - [`Histogram`] — a **lock-free log-linear-bucketed** distribution of
//!   `u64` observations (latencies in nanoseconds, backlog bytes). Every
//!   bucket is an `AtomicU64`, so recording is a single relaxed
//!   `fetch_add` from any thread and histograms merge across workers
//!   without locks. Counts are exact; quantiles are estimated with
//!   bounded relative error (see [`Histogram`]).
//!
//! Instruments live in a [`Registry`] under stable `snake_case` names
//! plus optional `(key, value)` labels. Registration is idempotent — the
//! same `(name, labels)` pair always returns the same handle — so
//! independent subsystems can share an instrument by spelling its name.
//! [`Registry::snapshot`] produces a plain-data [`MetricsSnapshot`]
//! (no JSON, no I/O) that callers serialize however they like;
//! [`render_prometheus`] renders it in the Prometheus text exposition
//! format.
//!
//! ```
//! use rkranks_core::telemetry::{Registry, render_prometheus};
//!
//! let reg = Registry::new();
//! let queries = reg.counter("queries_total", "queries served");
//! let latency = reg.histogram_scaled(
//!     "query_seconds", "end-to-end query latency", 1e-9,
//! );
//! queries.inc();
//! latency.record(12_500); // nanoseconds; rendered in seconds
//! let snap = reg.snapshot();
//! assert!(render_prometheus(&snap).contains("queries_total 1"));
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Sub-bucket resolution: each power-of-two octave is split into
/// `2^SUB_BITS = 32` linear sub-buckets, bounding the relative
/// quantile error at `1/32 ≈ 3.125%`.
const SUB_BITS: u32 = 5;
/// Sub-buckets per octave.
const SUB: usize = 1 << SUB_BITS;
/// Values with their most significant bit at or above this exponent
/// land in the overflow bucket (`2^40` ns ≈ 18 minutes).
const MAX_EXP: u32 = 40;
/// Values below `SUB` get one exact bucket each.
const EXACT: usize = SUB;
/// Grouped buckets: one octave per exponent in `SUB_BITS..MAX_EXP`.
const GROUPED: usize = (MAX_EXP - SUB_BITS) as usize * SUB;
/// Index of the single overflow bucket.
const OVERFLOW: usize = EXACT + GROUPED;
/// Total bucket count (32 exact + 1120 grouped + 1 overflow = 1153).
const NUM_BUCKETS: usize = OVERFLOW + 1;

/// Bucket index for a recorded value.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros(); // >= SUB_BITS here
    if msb >= MAX_EXP {
        return OVERFLOW;
    }
    let shift = msb - SUB_BITS;
    EXACT + (shift as usize) * SUB + ((v >> shift) as usize & (SUB - 1))
}

/// Largest value a bucket can hold (the quantile estimate for any
/// observation that landed in it).
fn bucket_upper(index: usize) -> u64 {
    if index < EXACT {
        return index as u64;
    }
    if index >= OVERFLOW {
        return u64::MAX;
    }
    let shift = ((index - EXACT) / SUB) as u32;
    let sub = ((index - EXACT) % SUB) as u64;
    ((SUB as u64 + sub + 1) << shift) - 1
}

/// A monotonically increasing `AtomicU64` metric.
///
/// The only mutators are [`Counter::inc`] / [`Counter::add`]; use a
/// [`Gauge`] for values that can go down.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// New counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrite the value. Only for mirroring an *external* monotone
    /// counter (one owned by another data structure) into a registry;
    /// callers must preserve monotonicity themselves.
    pub fn mirror(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A set-to-current-value `AtomicU64` metric (may go up or down).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// New gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Overwrite the current value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Add `n` to the current value.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtract `n` from the current value (saturating at zero).
    #[inline]
    pub fn sub(&self, n: u64) {
        // fetch_update loops only under contention; gauges are cold.
        let _ = self
            .value
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(n))
            });
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A lock-free log-linear-bucketed histogram of `u64` observations.
///
/// Each power-of-two octave is split into 32 linear sub-buckets, so a
/// quantile estimate (the upper bound of the bucket holding the target
/// rank) overshoots the true order statistic by at most `1/32 ≈ 3.125%`
/// (exact below 32, where every value has its own bucket). Values at or
/// above `2^40` share one overflow bucket whose estimate is `u64::MAX`.
///
/// Recording is one relaxed `fetch_add` per observation plus two for the
/// running count and sum — safe from any number of threads. Histograms
/// merge exactly: bucket counts are added, so
/// [`Histogram::absorb`] is associative and commutative.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// New empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total observations recorded (sum of all bucket counts).
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all recorded values (wraps on `u64` overflow).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Merge another histogram's buckets into this one. Exact: the
    /// result is identical to having recorded every observation here,
    /// so merging is associative across worker-local histograms.
    pub fn absorb(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n != 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Estimate the `q`-quantile (`q` in `[0, 1]`): the upper bound of
    /// the bucket holding the `ceil(q·count)`-th smallest observation.
    /// Never below the true order statistic; above it by < 3.125%.
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot(1.0).quantile(q)
    }

    /// Freeze the current state into a plain-data [`HistogramSnapshot`].
    ///
    /// Internally consistent even while other threads record: the
    /// snapshot count is the sum of the bucket counts it actually read
    /// (`sum` is read separately and may trail by in-flight records).
    pub fn snapshot(&self, scale: f64) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        let mut count = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n != 0 {
                count += n;
                buckets.push((bucket_upper(i), n));
            }
        }
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            scale,
            buckets,
        }
    }
}

/// Frozen state of a [`Histogram`]: non-empty buckets in ascending
/// order, each as `(upper_bound, count)` in the histogram's raw units.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HistogramSnapshot {
    /// Total observations (always equals the sum of `buckets` counts).
    pub count: u64,
    /// Sum of raw recorded values.
    pub sum: u64,
    /// Multiplier from raw units to display units (e.g. `1e-9` for
    /// nanosecond observations rendered as seconds).
    pub scale: f64,
    /// `(raw upper bound, count)` for each non-empty bucket, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Estimate the `q`-quantile in raw units (see
    /// [`Histogram::quantile`]). Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(upper, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return upper;
            }
        }
        self.buckets.last().map_or(0, |&(upper, _)| upper)
    }

    /// Sum of raw values converted to display units.
    pub fn scaled_sum(&self) -> f64 {
        self.sum as f64 * self.scale
    }
}

/// The value half of a metric sample.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// A monotone counter reading.
    Counter(u64),
    /// A gauge reading.
    Gauge(u64),
    /// A histogram snapshot.
    Histogram(HistogramSnapshot),
}

/// One named instrument's frozen state.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricSample {
    /// Stable `snake_case` metric name.
    pub name: String,
    /// `(key, value)` labels, in registration order.
    pub labels: Vec<(String, String)>,
    /// One-line human description.
    pub help: String,
    /// The reading.
    pub value: MetricValue,
}

/// A full registry snapshot, in registration order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Every registered instrument's current reading.
    pub samples: Vec<MetricSample>,
}

enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram { hist: Arc<Histogram>, scale: f64 },
}

impl Instrument {
    fn kind(&self) -> &'static str {
        match self {
            Instrument::Counter(_) => "counter",
            Instrument::Gauge(_) => "gauge",
            Instrument::Histogram { .. } => "histogram",
        }
    }
}

struct Entry {
    name: String,
    labels: Vec<(String, String)>,
    help: String,
    instrument: Instrument,
}

/// A typed registry of named instruments.
///
/// Names must be `snake_case` (`[a-z][a-z0-9_]*`); registering the same
/// `(name, labels)` pair twice returns the existing handle (and panics
/// if the kinds disagree — that is always a programming error). The
/// registry itself takes a mutex only at registration and snapshot
/// time; recording through the returned `Arc` handles is lock-free.
#[derive(Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

impl Registry {
    /// New empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Register (or fetch) an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, &[], help)
    }

    /// Register (or fetch) a labeled counter.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Arc<Counter> {
        match self.register(name, labels, help, || {
            Instrument::Counter(Arc::new(Counter::new()))
        }) {
            Instrument::Counter(c) => c,
            _ => unreachable!(),
        }
    }

    /// Register (or fetch) an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_with(name, &[], help)
    }

    /// Register (or fetch) a labeled gauge.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Arc<Gauge> {
        match self.register(name, labels, help, || {
            Instrument::Gauge(Arc::new(Gauge::new()))
        }) {
            Instrument::Gauge(g) => g,
            _ => unreachable!(),
        }
    }

    /// Register (or fetch) an unlabeled histogram of raw `u64` values
    /// (scale 1 — rendered as-is).
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        self.histogram_with(name, &[], help, 1.0)
    }

    /// Register (or fetch) an unlabeled histogram with a display scale
    /// (e.g. `1e-9` to record nanoseconds and expose seconds).
    pub fn histogram_scaled(&self, name: &str, help: &str, scale: f64) -> Arc<Histogram> {
        self.histogram_with(name, &[], help, scale)
    }

    /// Register (or fetch) a labeled, scaled histogram.
    pub fn histogram_with(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
        scale: f64,
    ) -> Arc<Histogram> {
        match self.register(name, labels, help, || Instrument::Histogram {
            hist: Arc::new(Histogram::new()),
            scale,
        }) {
            Instrument::Histogram { hist, .. } => hist,
            _ => unreachable!(),
        }
    }

    fn register(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
        make: impl FnOnce() -> Instrument,
    ) -> Instrument {
        assert!(
            valid_name(name),
            "metric name {name:?} is not snake_case ([a-z][a-z0-9_]*)"
        );
        let mut entries = self.entries.lock().expect("telemetry registry poisoned");
        if let Some(e) = entries
            .iter()
            .find(|e| e.name == name && label_eq(&e.labels, labels))
        {
            let made = make();
            assert!(
                std::mem::discriminant(&e.instrument) == std::mem::discriminant(&made),
                "metric {name:?} already registered as a {}, not a {}",
                e.instrument.kind(),
                made.kind(),
            );
            return clone_instrument(&e.instrument);
        }
        let instrument = make();
        let out = clone_instrument(&instrument);
        entries.push(Entry {
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|&(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            help: help.to_string(),
            instrument,
        });
        out
    }

    /// Freeze every instrument's current reading.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let entries = self.entries.lock().expect("telemetry registry poisoned");
        MetricsSnapshot {
            samples: entries
                .iter()
                .map(|e| MetricSample {
                    name: e.name.clone(),
                    labels: e.labels.clone(),
                    help: e.help.clone(),
                    value: match &e.instrument {
                        Instrument::Counter(c) => MetricValue::Counter(c.get()),
                        Instrument::Gauge(g) => MetricValue::Gauge(g.get()),
                        Instrument::Histogram { hist, scale } => {
                            MetricValue::Histogram(hist.snapshot(*scale))
                        }
                    },
                })
                .collect(),
        }
    }
}

fn clone_instrument(i: &Instrument) -> Instrument {
    match i {
        Instrument::Counter(c) => Instrument::Counter(Arc::clone(c)),
        Instrument::Gauge(g) => Instrument::Gauge(Arc::clone(g)),
        Instrument::Histogram { hist, scale } => Instrument::Histogram {
            hist: Arc::clone(hist),
            scale: *scale,
        },
    }
}

fn label_eq(have: &[(String, String)], want: &[(&str, &str)]) -> bool {
    have.len() == want.len()
        && have
            .iter()
            .zip(want.iter())
            .all(|((hk, hv), &(wk, wv))| hk == wk && hv == wv)
}

fn valid_name(s: &str) -> bool {
    let mut chars = s.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_lowercase())
        && chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
}

/// Render a snapshot in the Prometheus text exposition format
/// (version 0.0.4): `# HELP` / `# TYPE` headers, cumulative
/// `_bucket{le="…"}` series plus `_sum` / `_count` for histograms.
/// Histogram bucket bounds and sums are multiplied by the snapshot's
/// scale, so nanosecond histograms registered with scale `1e-9` expose
/// seconds, per Prometheus convention.
pub fn render_prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut done: Vec<&str> = Vec::new();
    for sample in &snap.samples {
        if done.contains(&sample.name.as_str()) {
            continue;
        }
        done.push(&sample.name);
        let family: Vec<&MetricSample> = snap
            .samples
            .iter()
            .filter(|s| s.name == sample.name)
            .collect();
        let kind = match &sample.value {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
        };
        out.push_str(&format!("# HELP {} {}\n", sample.name, sample.help));
        out.push_str(&format!("# TYPE {} {}\n", sample.name, kind));
        for s in family {
            match &s.value {
                MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        s.name,
                        label_block(&s.labels, None),
                        v
                    ));
                }
                MetricValue::Histogram(h) => {
                    let mut cum = 0u64;
                    for &(upper, n) in &h.buckets {
                        cum += n;
                        let le = fmt_f64(upper as f64 * h.scale);
                        out.push_str(&format!(
                            "{}_bucket{} {}\n",
                            s.name,
                            label_block(&s.labels, Some(&le)),
                            cum
                        ));
                    }
                    out.push_str(&format!(
                        "{}_bucket{} {}\n",
                        s.name,
                        label_block(&s.labels, Some("+Inf")),
                        h.count
                    ));
                    out.push_str(&format!(
                        "{}_sum{} {}\n",
                        s.name,
                        label_block(&s.labels, None),
                        fmt_f64(h.scaled_sum())
                    ));
                    out.push_str(&format!(
                        "{}_count{} {}\n",
                        s.name,
                        label_block(&s.labels, None),
                        h.count
                    ));
                }
            }
        }
    }
    out
}

fn label_block(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// `f64` in a form Prometheus parses: plain decimal (Rust's `Display`
/// never emits scientific notation), with `u64::MAX`-scaled overflow
/// bounds mapped to `+Inf`-adjacent large finite values as-is.
fn fmt_f64(v: f64) -> String {
    format!("{v}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..SUB as u64 {
            assert_eq!(bucket_upper(bucket_index(v)), v);
        }
    }

    #[test]
    fn bucket_bounds_are_monotone_and_tight() {
        let mut prev = 0u64;
        for i in 0..NUM_BUCKETS - 1 {
            let upper = bucket_upper(i);
            assert!(i == 0 || upper > prev, "bucket {i} not monotone");
            // The upper bound maps back into its own bucket.
            assert_eq!(bucket_index(upper), i);
            // The next value starts the next bucket.
            assert_eq!(bucket_index(upper + 1), i + 1);
            prev = upper;
        }
        assert_eq!(bucket_upper(OVERFLOW), u64::MAX);
        assert_eq!(bucket_index(u64::MAX), OVERFLOW);
        assert_eq!(bucket_index(1 << MAX_EXP), OVERFLOW);
        assert_eq!(bucket_index((1 << MAX_EXP) - 1), OVERFLOW - 1);
    }

    #[test]
    fn relative_error_is_bounded() {
        // For every bucket below overflow, (upper - lower)/lower < 1/32.
        for i in EXACT..OVERFLOW {
            let upper = bucket_upper(i);
            let lower = bucket_upper(i - 1) + 1;
            let width = (upper - lower) as f64;
            assert!(
                width <= lower as f64 / SUB as f64,
                "bucket {i}: width {width} too wide for lower bound {lower}"
            );
        }
    }

    #[test]
    fn quantiles_bound_order_statistics() {
        let h = Histogram::new();
        let values: Vec<u64> = (0..1000).map(|i| i * i).collect();
        for &v in &values {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        for &(q, rank) in &[(0.5, 500usize), (0.95, 950), (0.99, 990), (1.0, 1000)] {
            let exact = values[rank - 1];
            let est = h.quantile(q);
            assert!(est >= exact, "q={q}: {est} < exact {exact}");
            assert!(
                est as f64 <= exact as f64 * (1.0 + 1.0 / SUB as f64) + 1.0,
                "q={q}: {est} overshoots exact {exact}"
            );
        }
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        assert_eq!(Histogram::new().quantile(0.5), 0);
        assert_eq!(Histogram::new().snapshot(1.0).count, 0);
    }

    #[test]
    fn absorb_matches_direct_recording() {
        let (a, b, all) = (Histogram::new(), Histogram::new(), Histogram::new());
        for v in [0u64, 7, 31, 32, 100, 5_000, 1 << 20, u64::MAX] {
            a.record(v);
            all.record(v);
        }
        for v in [3u64, 64, 1_000_000, (1 << 40) + 5] {
            b.record(v);
            all.record(v);
        }
        a.absorb(&b);
        assert_eq!(a.snapshot(1.0), all.snapshot(1.0));
    }

    #[test]
    fn registry_is_idempotent_per_name_and_labels() {
        let reg = Registry::new();
        let c1 = reg.counter("hits_total", "hits");
        let c2 = reg.counter("hits_total", "hits");
        c1.inc();
        assert_eq!(c2.get(), 1);
        let l1 = reg.counter_with("hits_total", &[("kind", "a")], "hits");
        l1.add(5);
        assert_eq!(
            reg.counter_with("hits_total", &[("kind", "a")], "hits")
                .get(),
            5
        );
        // Distinct labels are distinct instruments.
        assert_eq!(
            reg.counter_with("hits_total", &[("kind", "b")], "hits")
                .get(),
            0
        );
    }

    #[test]
    #[should_panic(expected = "not snake_case")]
    fn registry_rejects_bad_names() {
        Registry::new().counter("Bad-Name", "nope");
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn registry_rejects_kind_mismatch() {
        let reg = Registry::new();
        reg.counter("x_total", "x");
        reg.gauge("x_total", "x");
    }

    #[test]
    fn snapshot_orders_and_reads() {
        let reg = Registry::new();
        reg.counter("a_total", "a").add(3);
        reg.gauge("b_bytes", "b").set(9);
        reg.histogram("c_raw", "c").record(42);
        let snap = reg.snapshot();
        assert_eq!(snap.samples.len(), 3);
        assert_eq!(snap.samples[0].value, MetricValue::Counter(3));
        assert_eq!(snap.samples[1].value, MetricValue::Gauge(9));
        match &snap.samples[2].value {
            MetricValue::Histogram(h) => {
                assert_eq!(h.count, 1);
                assert_eq!(h.sum, 42);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn prometheus_rendering_shape() {
        let reg = Registry::new();
        reg.counter_with("q_total", &[("strategy", "naive")], "queries")
            .add(2);
        reg.counter_with("q_total", &[("strategy", "static")], "queries")
            .add(1);
        let h = reg.histogram_scaled("lat_seconds", "latency", 1e-9);
        h.record(1_000);
        h.record(2_000);
        let text = render_prometheus(&reg.snapshot());
        // One HELP/TYPE pair per family, even with two label sets.
        assert_eq!(text.matches("# TYPE q_total counter").count(), 1);
        assert!(text.contains("q_total{strategy=\"naive\"} 2"));
        assert!(text.contains("q_total{strategy=\"static\"} 1"));
        assert!(text.contains("# TYPE lat_seconds histogram"));
        assert!(text.contains("lat_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("lat_seconds_count 2"));
        // Cumulative buckets never decrease.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.starts_with("lat_seconds_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last);
            last = v;
        }
    }

    #[test]
    fn concurrent_recording_is_exact() {
        let h = Arc::new(Histogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..1_000u64 {
                        h.record(t * 1_000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 4_000);
    }
}
