//! Query results and the `R` / `kRank` top-k collector.
//!
//! Algorithms 1 and 3 maintain "the set R of the nodes with the lowest
//! Rank values" and its k-th value `kRank`, which doubles as the global
//! pruning bound. [`TopKCollector`] implements exactly that: a bounded
//! max-heap keyed by rank where only *strict* improvements displace
//! entries, so earlier-discovered nodes win rank ties (Definition 2 allows
//! any tie-break; ours is deterministic given the traversal order).

use std::collections::BinaryHeap;

use rkranks_graph::NodeId;

use crate::stats::QueryStats;

/// One result entry: a node and its exact `Rank(node, q)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResultEntry {
    /// The result node (ranks `q` at position `rank`).
    pub node: NodeId,
    /// `Rank(node, q)`.
    pub rank: u32,
}

/// The answer to a reverse k-ranks query.
#[derive(Clone, Debug)]
pub struct QueryResult {
    /// Up to `k` entries, sorted by `(rank, node)`. Fewer than `k` only if
    /// fewer than `k` candidates can reach the query node.
    pub entries: Vec<ResultEntry>,
    /// Performance counters for this query.
    pub stats: QueryStats,
}

impl QueryResult {
    /// The result nodes in `(rank, node)` order.
    pub fn nodes(&self) -> Vec<NodeId> {
        self.entries.iter().map(|e| e.node).collect()
    }

    /// The multiset of ranks in ascending order.
    pub fn ranks(&self) -> Vec<u32> {
        self.entries.iter().map(|e| e.rank).collect()
    }

    /// `true` if `node` is among the results.
    pub fn contains(&self, node: NodeId) -> bool {
        self.entries.iter().any(|e| e.node == node)
    }
}

/// Bounded collector for the `k` smallest-rank nodes.
#[derive(Debug)]
pub struct TopKCollector {
    k: usize,
    // max-heap on (rank, node): the root is the current kRank entry.
    heap: BinaryHeap<(u32, NodeId)>,
}

impl TopKCollector {
    /// Collector for `k ≥ 1` results.
    pub fn new(k: u32) -> Self {
        TopKCollector {
            k: k as usize,
            heap: BinaryHeap::with_capacity(k as usize + 1),
        }
    }

    /// Current `kRank` bound: the k-th smallest rank seen so far, or
    /// `u32::MAX` while fewer than `k` entries are held.
    ///
    /// Refinements may run while their running count is ≤ `kRank`
    /// (Algorithm 2 prunes strictly above it).
    #[inline]
    pub fn k_rank(&self) -> u32 {
        if self.heap.len() < self.k {
            u32::MAX
        } else {
            self.heap.peek().map_or(u32::MAX, |&(r, _)| r)
        }
    }

    /// Number of entries currently held.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no entries are held.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Offer a `(node, rank)` pair. Returns `true` if it entered `R`
    /// (callers must not offer the same node twice — the SDS traversal
    /// visits each candidate at most once, and index-known nodes are never
    /// re-refined).
    pub fn offer(&mut self, node: NodeId, rank: u32) -> bool {
        debug_assert!(
            !self.heap.iter().any(|&(_, n)| n == node),
            "node {node} offered twice to the collector"
        );
        if self.heap.len() < self.k {
            self.heap.push((rank, node));
            true
        } else if rank < self.k_rank() {
            self.heap.pop();
            self.heap.push((rank, node));
            true
        } else {
            false
        }
    }

    /// Finish: produce the sorted result with the given stats.
    pub fn into_result(self, stats: QueryStats) -> QueryResult {
        let mut entries: Vec<ResultEntry> = self
            .heap
            .into_iter()
            .map(|(rank, node)| ResultEntry { node, rank })
            .collect();
        entries.sort_unstable_by_key(|e| (e.rank, e.node));
        QueryResult { entries, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_k_smallest() {
        let mut c = TopKCollector::new(2);
        assert_eq!(c.k_rank(), u32::MAX);
        assert!(c.offer(NodeId(10), 5));
        assert!(c.offer(NodeId(11), 9));
        assert_eq!(c.k_rank(), 9);
        assert!(c.offer(NodeId(12), 3)); // displaces rank 9
        assert_eq!(c.k_rank(), 5);
        assert!(!c.offer(NodeId(13), 6)); // not better than kRank
        let r = c.into_result(QueryStats::default());
        assert_eq!(r.ranks(), vec![3, 5]);
        assert_eq!(r.nodes(), vec![NodeId(12), NodeId(10)]);
    }

    #[test]
    fn ties_do_not_displace() {
        let mut c = TopKCollector::new(1);
        assert!(c.offer(NodeId(1), 4));
        assert!(!c.offer(NodeId(2), 4)); // tie: first stays
        let r = c.into_result(QueryStats::default());
        assert_eq!(r.nodes(), vec![NodeId(1)]);
    }

    #[test]
    fn result_ordering_breaks_rank_ties_by_node() {
        let mut c = TopKCollector::new(3);
        c.offer(NodeId(9), 2);
        c.offer(NodeId(3), 2);
        c.offer(NodeId(5), 1);
        let r = c.into_result(QueryStats::default());
        assert_eq!(r.nodes(), vec![NodeId(5), NodeId(3), NodeId(9)]);
        assert_eq!(r.ranks(), vec![1, 2, 2]);
    }

    #[test]
    fn under_filled_collector() {
        let mut c = TopKCollector::new(5);
        c.offer(NodeId(0), 7);
        assert_eq!(c.len(), 1);
        assert_eq!(c.k_rank(), u32::MAX);
        let r = c.into_result(QueryStats::default());
        assert_eq!(r.entries.len(), 1);
    }

    #[test]
    fn result_helpers() {
        let mut c = TopKCollector::new(2);
        c.offer(NodeId(4), 1);
        c.offer(NodeId(6), 2);
        let r = c.into_result(QueryStats::default());
        assert!(r.contains(NodeId(4)));
        assert!(!r.contains(NodeId(5)));
    }
}
