//! Index persistence.
//!
//! The paper's index is expensive to build (Table 15: hours on real DBLP)
//! and keeps improving as it absorbs queries (Table 14) — exactly the kind
//! of state a deployment wants to keep across restarts. This module stores
//! an [`RkrIndex`] in a line-oriented text format:
//!
//! ```text
//! rkr-index v1 <num_nodes> <k_max>
//! H <hub> <hub> ...
//! C <node> <check-value>
//! R <target> <source> <rank>
//! ```
//!
//! ### The `v2` header and the graph-epoch tag
//!
//! A `v1` file carries no statement about *which* graph its ranks were
//! measured on — fine for indexes built against a static edge file, and a
//! silent-mismatch hazard the moment the serving graph absorbs live
//! updates. Indexes whose [`RkrIndex::graph_epoch`] is non-zero therefore
//! serialize with a `v2` header that carries the tag:
//!
//! ```text
//! rkr-index v2 <num_nodes> <k_max> <graph_epoch>
//! ```
//!
//! Record lines are identical in both versions. [`write_index`] emits `v1`
//! whenever `graph_epoch == 0` (so epoch-0 files stay byte-identical to
//! what older readers expect) and `v2` otherwise; [`read_index`] accepts
//! both, restoring the tag. Callers that pair a loaded index with a plain
//! edge file must refuse `graph_epoch > 0` indexes — those belong inside a
//! snapshot bundle ([`crate::snapshot`]) where the matching graph travels
//! alongside.
//!
//! Loading validates structure (ids in range, ranks ≥ 1, list caps) so a
//! corrupted file cannot produce an index that silently mis-prunes.
//! [`save_index`] writes atomically ([`rkranks_graph::write_atomic`]):
//! a crash mid-save never truncates the previous good file.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use rkranks_graph::{write_atomic, GraphError, NodeId, Result};

use crate::index::RkrIndex;

/// Serialize an index (`v1` header when `graph_epoch == 0`, `v2`
/// otherwise; see the module docs).
pub fn write_index<W: Write>(index: &RkrIndex, out: W) -> Result<()> {
    let mut w = BufWriter::new(out);
    if index.graph_epoch() == 0 {
        writeln!(w, "rkr-index v1 {} {}", index.num_nodes(), index.k_max())?;
    } else {
        writeln!(
            w,
            "rkr-index v2 {} {} {}",
            index.num_nodes(),
            index.k_max(),
            index.graph_epoch()
        )?;
    }
    if !index.hubs().is_empty() {
        write!(w, "H")?;
        for h in index.hubs() {
            write!(w, " {h}")?;
        }
        writeln!(w)?;
    }
    for (u, c) in index.check_entries() {
        writeln!(w, "C {u} {c}")?;
    }
    for (target, list) in index.rrd_lists() {
        for &(rank, source) in list {
            writeln!(w, "R {target} {source} {rank}")?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Save an index to a file (atomically; see
/// [`rkranks_graph::write_atomic`]).
pub fn save_index<P: AsRef<Path>>(index: &RkrIndex, path: P) -> Result<()> {
    write_atomic(path, |w| write_index(index, w))
}

/// Deserialize an index.
pub fn read_index<R: Read>(input: R) -> Result<RkrIndex> {
    let reader = BufReader::new(input);
    let mut lines = reader.lines().enumerate();
    let parse_err = |line: usize, message: String| GraphError::Parse {
        line: line + 1,
        message,
    };

    let (num_nodes, k_max, graph_epoch) = loop {
        let (idx, line) = lines
            .next()
            .ok_or_else(|| parse_err(0, "empty index file".into()))
            .and_then(|(i, l)| Ok((i, l?)))?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let mut parts = t.split_whitespace();
        let version = match (parts.next(), parts.next()) {
            (Some("rkr-index"), Some("v1")) => 1,
            (Some("rkr-index"), Some("v2")) => 2,
            _ => {
                return Err(parse_err(
                    idx,
                    "expected 'rkr-index v1 <nodes> <k_max>' or \
                     'rkr-index v2 <nodes> <k_max> <graph_epoch>' header"
                        .into(),
                ))
            }
        };
        let n: u32 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err(idx, "bad node count".into()))?;
        let k: u32 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err(idx, "bad k_max".into()))?;
        // v1 files predate live graphs: their knowledge belongs to
        // whatever static graph the caller pairs them with (epoch 0).
        let ge: u64 = if version == 1 {
            0
        } else {
            parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| parse_err(idx, "bad graph epoch".into()))?
        };
        break (n, k, ge);
    };

    let mut index = RkrIndex::empty(num_nodes, k_max);
    index.set_graph_epoch(graph_epoch);
    let in_range = |line: usize, v: u32| {
        if v < num_nodes {
            Ok(NodeId(v))
        } else {
            Err(parse_err(
                line,
                format!("node {v} out of range (n = {num_nodes})"),
            ))
        }
    };
    for (idx, line) in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let mut parts = t.split_whitespace();
        let tag = parts.next().unwrap();
        let mut num = |what: &str| -> Result<u32> {
            parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| parse_err(idx, format!("bad {what}")))
        };
        match tag {
            "H" => {
                let mut hubs = Vec::new();
                for tok in t.split_whitespace().skip(1) {
                    let v: u32 = tok
                        .parse()
                        .map_err(|_| parse_err(idx, format!("bad hub id '{tok}'")))?;
                    hubs.push(in_range(idx, v)?);
                }
                index.set_hubs(hubs);
            }
            "C" => {
                let u = in_range(idx, num("node")?)?;
                let c = num("check value")?;
                index.raise_check(u, c);
            }
            "R" => {
                let target = in_range(idx, num("target")?)?;
                let source = in_range(idx, num("source")?)?;
                let rank = num("rank")?;
                if rank == 0 {
                    return Err(parse_err(idx, "ranks start at 1".into()));
                }
                index.offer(target, source, rank);
            }
            other => return Err(parse_err(idx, format!("unknown record tag '{other}'"))),
        }
    }
    Ok(index)
}

/// Load an index from a file.
pub fn load_index<P: AsRef<Path>>(path: P) -> Result<RkrIndex> {
    read_index(File::open(path)?)
}

#[cfg(test)]
mod tests {
    // Deprecated query_* shims exercised on purpose: equivalence tests
    // for the execute path they delegate to.
    #![allow(deprecated)]

    use super::*;
    use crate::engine::{BoundConfig, QueryEngine};
    use crate::index::IndexParams;
    use crate::spec::QuerySpec;
    use rkranks_graph::{graph_from_edges, EdgeDirection};

    fn sample_index() -> RkrIndex {
        let g = graph_from_edges(
            EdgeDirection::Undirected,
            [(0, 1, 1.0), (1, 2, 0.5), (2, 3, 2.0), (3, 0, 1.5)],
        )
        .unwrap();
        let params = IndexParams {
            hub_fraction: 0.5,
            prefix_fraction: 0.75,
            k_max: 3,
            ..Default::default()
        };
        RkrIndex::build(&g, QuerySpec::Mono, &params).0
    }

    fn round_trip(idx: &RkrIndex) -> RkrIndex {
        let mut buf = Vec::new();
        write_index(idx, &mut buf).unwrap();
        read_index(&buf[..]).unwrap()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let idx = sample_index();
        let back = round_trip(&idx);
        assert_eq!(back.k_max(), idx.k_max());
        assert_eq!(back.num_nodes(), idx.num_nodes());
        assert_eq!(back.hubs(), idx.hubs());
        assert_eq!(back.rrd_entries(), idx.rrd_entries());
        for u in 0..idx.num_nodes() {
            assert_eq!(back.check(NodeId(u)), idx.check(NodeId(u)));
            assert_eq!(
                back.top_entries(NodeId(u), 10),
                idx.top_entries(NodeId(u), 10)
            );
        }
    }

    #[test]
    fn round_trip_after_query_updates() {
        let g = graph_from_edges(
            EdgeDirection::Undirected,
            [
                (0, 1, 1.0),
                (1, 2, 0.5),
                (2, 3, 2.0),
                (3, 0, 1.5),
                (0, 2, 3.0),
            ],
        )
        .unwrap();
        let mut engine = QueryEngine::new(&g);
        let mut idx = RkrIndex::empty(g.num_nodes(), 4);
        for q in g.nodes() {
            engine
                .query_indexed(&mut idx, q, 2, BoundConfig::ALL)
                .unwrap();
        }
        let back = round_trip(&idx);
        // and the loaded index answers identically
        let mut loaded = back;
        for q in g.nodes() {
            let a = engine
                .query_indexed(&mut idx, q, 2, BoundConfig::ALL)
                .unwrap();
            let b = engine
                .query_indexed(&mut loaded, q, 2, BoundConfig::ALL)
                .unwrap();
            assert_eq!(a.entries, b.entries, "q={q}");
        }
    }

    #[test]
    fn empty_index_round_trips() {
        let idx = RkrIndex::empty(5, 7);
        let back = round_trip(&idx);
        assert_eq!(back.num_nodes(), 5);
        assert_eq!(back.k_max(), 7);
        assert_eq!(back.rrd_entries(), 0);
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_index("not an index\n".as_bytes()).is_err());
        assert!(read_index("".as_bytes()).is_err());
        assert!(read_index("rkr-index v1 5\n".as_bytes()).is_err()); // missing k_max
        assert!(read_index("rkr-index v1 5 3\nX 1 2 3\n".as_bytes()).is_err()); // bad tag
        assert!(read_index("rkr-index v1 5 3\nR 9 0 1\n".as_bytes()).is_err()); // out of range
        assert!(read_index("rkr-index v1 5 3\nR 0 1 0\n".as_bytes()).is_err()); // rank 0
    }

    /// A write interrupted mid-stream (partial header, record cut short,
    /// or numeric garbage where a field was truncated) must be a parse
    /// error, never a silently mis-pruning index.
    #[test]
    fn rejects_truncated_and_corrupt_files() {
        // a real serialized index whose final record lost its last field
        // (the classic interrupted-write shape)
        let mut buf = Vec::new();
        write_index(&sample_index(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let last = text.lines().last().unwrap();
        assert!(last.starts_with('R'), "expected an R record last: {last:?}");
        let cut_field = last.rsplit_once(' ').unwrap().0;
        let truncated = format!("{}{cut_field}\n", &text[..text.len() - last.len() - 1]);
        assert!(
            read_index(truncated.as_bytes()).is_err(),
            "accepted a record truncated to {cut_field:?}"
        );
        // header truncated before the dimensions
        assert!(read_index("rkr-index\n".as_bytes()).is_err());
        assert!(read_index("rkr-index v1\n".as_bytes()).is_err());
        // records with missing fields
        assert!(read_index("rkr-index v1 5 3\nC 1\n".as_bytes()).is_err());
        assert!(read_index("rkr-index v1 5 3\nR 0 1\n".as_bytes()).is_err());
        // numeric garbage
        assert!(read_index("rkr-index v1 5 3\nC x 2\n".as_bytes()).is_err());
        assert!(read_index("rkr-index v1 5 3\nR 0 1 abc\n".as_bytes()).is_err());
        assert!(read_index("rkr-index v1 5 3\nH 1 x\n".as_bytes()).is_err());
        // hub id out of range
        assert!(read_index("rkr-index v1 5 3\nH 9\n".as_bytes()).is_err());
        // check-dictionary node out of range
        assert!(read_index("rkr-index v1 5 3\nC 9 1\n".as_bytes()).is_err());
        // non-UTF-8 bytes mid-file surface as an error, not a panic
        let mut bad = b"rkr-index v1 5 3\nC 1 ".to_vec();
        bad.extend_from_slice(&[0xFF, 0xFE, b'\n']);
        assert!(read_index(&bad[..]).is_err());
    }

    /// Parse errors carry the 1-based line number of the offending record.
    #[test]
    fn parse_errors_point_at_the_bad_line() {
        let text = "rkr-index v1 5 3\nC 1 2\nR 0 1 oops\n";
        match read_index(text.as_bytes()) {
            Err(rkranks_graph::GraphError::Parse { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected a parse error, got {other:?}"),
        }
    }

    #[test]
    fn comments_and_blanks_allowed() {
        let text = "# persisted index\n\nrkr-index v1 3 2\nC 1 4\nR 0 1 2\n";
        let idx = read_index(text.as_bytes()).unwrap();
        assert_eq!(idx.check(NodeId(1)), 4);
        assert_eq!(idx.lookup(NodeId(0), NodeId(1)), Some(2));
    }

    /// Epoch-0 indexes keep writing the `v1` header — old files and old
    /// readers stay compatible — while a non-zero graph epoch switches to
    /// `v2` and survives the round trip.
    #[test]
    fn graph_epoch_round_trips_through_the_v2_header() {
        let mut idx = sample_index();
        assert_eq!(idx.graph_epoch(), 0);
        let mut buf = Vec::new();
        write_index(&idx, &mut buf).unwrap();
        assert!(buf.starts_with(b"rkr-index v1 "), "epoch 0 must stay v1");

        idx.set_graph_epoch(3);
        let mut buf = Vec::new();
        write_index(&idx, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(
            text.starts_with(&format!(
                "rkr-index v2 {} {} 3\n",
                idx.num_nodes(),
                idx.k_max()
            )),
            "unexpected v2 header: {}",
            text.lines().next().unwrap()
        );
        let back = read_index(&buf[..]).unwrap();
        assert_eq!(back.graph_epoch(), 3);
        assert_eq!(back.rrd_entries(), idx.rrd_entries());
    }

    #[test]
    fn v1_files_load_at_graph_epoch_zero() {
        let text = "rkr-index v1 3 2\nC 1 4\nR 0 1 2\n";
        let idx = read_index(text.as_bytes()).unwrap();
        assert_eq!(idx.graph_epoch(), 0);
        assert_eq!(idx.check(NodeId(1)), 4);
    }

    #[test]
    fn v2_header_is_validated() {
        // missing epoch field
        assert!(read_index("rkr-index v2 5 3\n".as_bytes()).is_err());
        // numeric garbage in the epoch field
        assert!(read_index("rkr-index v2 5 3 soon\n".as_bytes()).is_err());
        // unknown versions are rejected outright
        assert!(read_index("rkr-index v3 5 3 1\n".as_bytes()).is_err());
        // well-formed v2 loads
        let idx = read_index("rkr-index v2 5 3 9\nC 1 2\n".as_bytes()).unwrap();
        assert_eq!(idx.graph_epoch(), 9);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("rkranks-index-io");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.rkri");
        let idx = sample_index();
        save_index(&idx, &path).unwrap();
        let back = load_index(&path).unwrap();
        assert_eq!(back.rrd_entries(), idx.rrd_entries());
        std::fs::remove_file(&path).ok();
    }
}
