//! Per-query statistics.
//!
//! The paper measures two things (§6.3): wall-clock query time and "Rank
//! Refinement" — the number of times the refinement procedure runs, its
//! proxy for pruning power. [`QueryStats`] captures both plus the
//! lower-level counters the bound analysis (Table 11) and our ablations
//! need.

use std::ops::AddAssign;
use std::time::Duration;

/// Which lower-bound component of Theorem 2 (plus the index's check
/// dictionary) won the `max` at each bound evaluation — the paper's
/// Table 11 measurement.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BoundWins {
    /// Parent-rank component (Lemma 1).
    pub parent: u64,
    /// Tree-depth component (Lemma 2).
    pub height: u64,
    /// Visit-count component (Lemma 4, undirected monochromatic only).
    pub count: u64,
    /// Check-dictionary component (§5.3, indexed queries only).
    pub check: u64,
}

impl BoundWins {
    /// Total bound evaluations recorded.
    pub fn total(&self) -> u64 {
        self.parent + self.height + self.count + self.check
    }

    /// Percentage share of each component `(parent, height, count, check)`.
    pub fn shares(&self) -> (f64, f64, f64, f64) {
        let t = self.total();
        if t == 0 {
            return (0.0, 0.0, 0.0, 0.0);
        }
        let pct = |v: u64| 100.0 * v as f64 / t as f64;
        (
            pct(self.parent),
            pct(self.height),
            pct(self.count),
            pct(self.check),
        )
    }
}

impl AddAssign for BoundWins {
    fn add_assign(&mut self, rhs: BoundWins) {
        self.parent += rhs.parent;
        self.height += rhs.height;
        self.count += rhs.count;
        self.check += rhs.check;
    }
}

/// Counters and timing for one reverse k-ranks query.
#[derive(Clone, Debug, Default)]
pub struct QueryStats {
    /// Nodes popped from the SDS-tree priority queue.
    pub sds_popped: u64,
    /// Edge relaxations performed while building the SDS-tree.
    pub sds_relaxations: u64,
    /// Rank-refinement invocations (the paper's pruning-power metric).
    pub refinement_calls: u64,
    /// Refinements that terminated early on the `kRank` bound.
    pub refinements_pruned: u64,
    /// Total nodes settled across all refinements.
    pub refinement_settles: u64,
    /// Total frontier insertions across all refinements.
    pub refinement_pushes: u64,
    /// Candidates pruned by the Theorem-2 lower bound *before* refinement
    /// (dynamic variants only).
    pub pruned_by_bound: u64,
    /// Candidates whose exact rank came straight from the Reverse Rank
    /// Dictionary (indexed variant only).
    pub index_exact_hits: u64,
    /// Distance-oracle consultations during the SDS filter (hub
    /// strategies only).
    pub oracle_lookups: u64,
    /// Bound prunes where the oracle's certified lower bound alone met
    /// `kRank` (a subset of `pruned_by_bound`).
    pub pruned_by_oracle: u64,
    /// Which bound component supplied the max at each evaluation.
    pub bound_wins: BoundWins,
    /// Wall-clock time for the query.
    pub elapsed: Duration,
    /// Wall-clock time spent inside rank refinement (a subset of
    /// `elapsed`; the rest is the SDS filter phase).
    pub refine_time: Duration,
}

impl QueryStats {
    /// Merge another query's counters into this one (used for averaging).
    pub fn absorb(&mut self, other: &QueryStats) {
        self.sds_popped += other.sds_popped;
        self.sds_relaxations += other.sds_relaxations;
        self.refinement_calls += other.refinement_calls;
        self.refinements_pruned += other.refinements_pruned;
        self.refinement_settles += other.refinement_settles;
        self.refinement_pushes += other.refinement_pushes;
        self.pruned_by_bound += other.pruned_by_bound;
        self.index_exact_hits += other.index_exact_hits;
        self.oracle_lookups += other.oracle_lookups;
        self.pruned_by_oracle += other.pruned_by_oracle;
        self.bound_wins += other.bound_wins;
        self.elapsed += other.elapsed;
        self.refine_time += other.refine_time;
    }

    /// Average per-query view after absorbing `n` queries.
    pub fn mean_over(&self, n: u64) -> MeanStats {
        let n = n.max(1);
        MeanStats {
            queries: n,
            refinement_calls: self.refinement_calls as f64 / n as f64,
            pruned_by_bound: self.pruned_by_bound as f64 / n as f64,
            index_exact_hits: self.index_exact_hits as f64 / n as f64,
            refinement_settles: self.refinement_settles as f64 / n as f64,
            seconds: self.elapsed.as_secs_f64() / n as f64,
        }
    }
}

/// Per-stage breakdown of one query, derived from [`QueryStats`] by
/// [`crate::EngineContext::execute_with`] and carried on
/// [`crate::QueryOutcome`].
///
/// The paper's SDS algorithm is a filter-and-refine pipeline (§3–§4):
/// `filter` is the SDS-tree traversal plus bound evaluation, `refine`
/// is the time inside rank refinement (Algorithms 2/4). By
/// construction `filter + refine == elapsed`, so the invariant
/// `filter + refine <= total` always holds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryStageStats {
    /// Time in the SDS filter phase (traversal, bounds, bookkeeping).
    pub filter: Duration,
    /// Time inside rank-refinement calls.
    pub refine: Duration,
    /// Candidates eliminated without refinement (Theorem-2 bound
    /// prunes plus index exact hits).
    pub candidates_pruned: u64,
    /// Rank-refinement invocations.
    pub refine_calls: u64,
}

impl QueryStageStats {
    /// Derive the stage view from a query's raw counters.
    pub fn from_stats(stats: &QueryStats) -> QueryStageStats {
        let refine = stats.refine_time.min(stats.elapsed);
        QueryStageStats {
            filter: stats.elapsed - refine,
            refine,
            candidates_pruned: stats.pruned_by_bound + stats.index_exact_hits,
            refine_calls: stats.refinement_calls,
        }
    }

    /// `filter + refine` — never exceeds the query's `elapsed`.
    pub fn total(&self) -> Duration {
        self.filter + self.refine
    }
}

/// Averaged statistics over a batch of queries.
#[derive(Clone, Copy, Debug, Default)]
pub struct MeanStats {
    /// Number of queries averaged.
    pub queries: u64,
    /// Mean rank-refinement calls per query.
    pub refinement_calls: f64,
    /// Mean bound-pruned candidates per query.
    pub pruned_by_bound: f64,
    /// Mean index exact hits per query.
    pub index_exact_hits: f64,
    /// Mean refinement settles per query.
    pub refinement_settles: f64,
    /// Mean seconds per query.
    pub seconds: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_shares_sum_to_100() {
        let w = BoundWins {
            parent: 60,
            height: 30,
            count: 10,
            check: 0,
        };
        let (p, h, c, k) = w.shares();
        assert!((p + h + c + k - 100.0).abs() < 1e-9);
        assert!((p - 60.0).abs() < 1e-9);
    }

    #[test]
    fn empty_bound_shares_are_zero() {
        assert_eq!(BoundWins::default().shares(), (0.0, 0.0, 0.0, 0.0));
    }

    #[test]
    fn absorb_accumulates() {
        let mut a = QueryStats {
            refinement_calls: 2,
            ..Default::default()
        };
        let b = QueryStats {
            refinement_calls: 3,
            pruned_by_bound: 5,
            elapsed: Duration::from_millis(10),
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.refinement_calls, 5);
        assert_eq!(a.pruned_by_bound, 5);
        assert_eq!(a.elapsed, Duration::from_millis(10));
    }

    #[test]
    fn mean_over_divides() {
        let total = QueryStats {
            refinement_calls: 10,
            elapsed: Duration::from_secs(2),
            ..Default::default()
        };
        let m = total.mean_over(4);
        assert!((m.refinement_calls - 2.5).abs() < 1e-12);
        assert!((m.seconds - 0.5).abs() < 1e-12);
    }

    #[test]
    fn stage_split_covers_elapsed() {
        let stats = QueryStats {
            elapsed: Duration::from_micros(100),
            refine_time: Duration::from_micros(30),
            refinement_calls: 4,
            pruned_by_bound: 7,
            index_exact_hits: 2,
            ..Default::default()
        };
        let stage = QueryStageStats::from_stats(&stats);
        assert_eq!(stage.total(), stats.elapsed);
        assert_eq!(stage.refine, Duration::from_micros(30));
        assert_eq!(stage.candidates_pruned, 9);
        assert_eq!(stage.refine_calls, 4);
        // A refine clock that (pathologically) exceeds elapsed clamps.
        let odd = QueryStats {
            elapsed: Duration::from_micros(10),
            refine_time: Duration::from_micros(20),
            ..Default::default()
        };
        let stage = QueryStageStats::from_stats(&odd);
        assert_eq!(stage.filter, Duration::ZERO);
        assert!(stage.total() <= odd.elapsed);
    }

    #[test]
    fn mean_over_zero_is_safe() {
        let m = QueryStats::default().mean_over(0);
        assert_eq!(m.queries, 1);
    }
}
