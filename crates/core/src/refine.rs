//! Rank refinement (Algorithms 2 and 4).
//!
//! Given a candidate `p` with known `d(p,q)` (from the SDS-tree), compute
//! `Rank(p,q)` by a **bounded** Dijkstra from `p`: only nodes with
//! tentative distance strictly below `d(p,q)` ever enter the frontier, so
//! the traversal enumerates exactly `S = {v : d(p,v) < d(p,q)}` and never
//! needs to reach `q` itself. `Rank(p,q) = |S ∩ counted| + 1`.
//!
//! Early termination (the `kRank` bound): every frontier insertion is a
//! node guaranteed to be in `S`, so `1 + inserted_counted` is a monotone
//! lower bound on the final rank; once it exceeds `kRank` the candidate can
//! never enter the result and refinement aborts (Algorithm 2, line 17).
//!
//! Optional hooks make this the single refinement implementation for all
//! variants:
//! * `lcount` — Algorithm 4 line 18: every inserted node's visit counter is
//!   bumped, feeding the Lemma-4 lower bound of later candidates;
//! * `index` — Algorithm 4 lines 8/20/22: every settled counted node's
//!   exact rank is offered to the Reverse Rank Dictionary, and the Check
//!   Dictionary is raised with a tie-safe bound on everything not
//!   enumerated (see [`rkranks_graph::RankCounter::unsettled_rank_lower_bound`]).

use rkranks_graph::rank::RankCounter;
use rkranks_graph::{DijkstraWorkspace, Distance, Graph, NodeId, RelaxOutcome};

use crate::index::IndexAccess;
use crate::scratch::Stamped;
use crate::spec::QuerySpec;
use crate::stats::QueryStats;

/// Result of one rank refinement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RefineOutcome {
    /// Refinement completed: the exact `Rank(p,q)`.
    Exact(u32),
    /// Refinement aborted on the `kRank` bound; `Rank(p,q) ≥ lower_bound`
    /// (the paper's `-1` return).
    Pruned {
        /// A proven lower bound on the candidate's rank (`kRank + 1` at the
        /// moment of abort).
        lower_bound: u32,
    },
}

/// Optional side-effect hooks threaded through refinement.
pub struct RefineHooks<'a, 'i> {
    /// Lemma-4 visit counters (`None` on directed graphs and in
    /// bichromatic mode, where the bound is unsound).
    pub lcount: Option<&'a mut Stamped<u32>>,
    /// Index state to read and update (Algorithm 4), if any — either the
    /// live index or a snapshot + write-log pair.
    pub index: Option<&'a mut IndexAccess<'i>>,
}

impl RefineHooks<'_, '_> {
    /// No side effects (Algorithm 2 as written).
    pub fn none() -> RefineHooks<'static, 'static> {
        RefineHooks {
            lcount: None,
            index: None,
        }
    }
}

/// Bounded rank refinement of candidate `p` for query `q` at distance
/// `dpq = d(p,q)`.
///
/// `k_rank` is the current global bound (`u32::MAX` while `R` is not full).
#[allow(clippy::too_many_arguments)] // mirrors the paper's GetRank signature
pub fn refine_rank(
    graph: &Graph,
    spec: QuerySpec<'_>,
    ws: &mut DijkstraWorkspace,
    p: NodeId,
    q: NodeId,
    dpq: Distance,
    k_rank: u32,
    hooks: &mut RefineHooks<'_, '_>,
    stats: &mut QueryStats,
) -> RefineOutcome {
    debug_assert_ne!(p, q, "the query node is never refined");
    stats.refinement_calls += 1;

    ws.ensure_capacity(graph.num_nodes());
    ws.begin(p);
    let mut counter = RankCounter::new();
    // Counted frontier insertions: a monotone lower bound on |S ∩ counted|.
    let mut inserted_counted: u32 = 0;
    // Offers below the pre-existing check value were made by earlier runs
    // from p (the §5.3 "until the rank value exceeds Check[u]" rule); in
    // snapshot mode the floor includes this worker's own logged raises.
    let check_at_start = hooks.index.as_deref().map_or(0, |idx| idx.offer_floor(p));

    while let Some((v, d)) = ws.settle_next() {
        stats.refinement_settles += 1;
        if v != p && spec.is_counted(v) {
            let r = counter.on_settle(d);
            if let Some(idx) = hooks.index.as_deref_mut() {
                if r >= check_at_start {
                    idx.offer(v, p, r);
                }
            }
        }
        let (targets, weights) = graph.out_neighbors(v);
        for (t, w) in targets.iter().zip(weights.iter()) {
            let nd = d + *w;
            // Algorithm 2 line 13: only distances strictly below d(p,q)
            // can contribute to the rank. `q` itself is excluded outright:
            // by Definition 1 it never counts toward its own rank, and
            // floating-point summation order can make a forward path to q
            // come out one ulp below the transpose-computed `dpq`.
            if nd >= dpq || *t == q {
                continue;
            }
            if ws.relax(*t, nd) == RelaxOutcome::Inserted {
                stats.refinement_pushes += 1;
                if let Some(lc) = hooks.lcount.as_deref_mut() {
                    lc.increment(t.index());
                }
                if spec.is_counted(*t) {
                    inserted_counted += 1;
                    if k_rank != u32::MAX && 1 + inserted_counted > k_rank {
                        return prune(ws, &counter, k_rank, p, hooks, stats);
                    }
                }
            }
        }
    }

    // Frontier drained: S is fully enumerated, the rank is exact. Every
    // node not enumerated sits at distance ≥ d(p,q), so its rank from p is
    // at least this one — exactly what the Check Dictionary stores.
    let rank = counter.settled() + 1;
    if let Some(idx) = hooks.index.as_deref_mut() {
        idx.offer(q, p, rank);
        idx.raise_check(p, rank);
    }
    RefineOutcome::Exact(rank)
}

#[cold]
fn prune(
    ws: &DijkstraWorkspace,
    counter: &RankCounter,
    k_rank: u32,
    p: NodeId,
    hooks: &mut RefineHooks<'_, '_>,
    stats: &mut QueryStats,
) -> RefineOutcome {
    stats.refinements_pruned += 1;
    if let Some(idx) = hooks.index.as_deref_mut() {
        let next = ws.peek_frontier().map(|(_, d)| d);
        idx.raise_check(p, counter.unsettled_rank_lower_bound(next));
    }
    RefineOutcome::Pruned {
        lower_bound: k_rank.saturating_add(1),
    }
}

/// Unbounded refinement for the naive baseline (§2): browse from `p` until
/// `q` settles. Returns `None` when `q` is unreachable from `p` (its rank
/// is undefined).
pub fn refine_rank_unbounded(
    graph: &Graph,
    spec: QuerySpec<'_>,
    ws: &mut DijkstraWorkspace,
    p: NodeId,
    q: NodeId,
    k_rank: u32,
    stats: &mut QueryStats,
) -> Option<RefineOutcome> {
    debug_assert_ne!(p, q);
    stats.refinement_calls += 1;
    ws.ensure_capacity(graph.num_nodes());
    ws.begin(p);
    let mut counter = RankCounter::new();
    while let Some((v, d)) = ws.settle_next() {
        stats.refinement_settles += 1;
        if v != p && spec.is_counted(v) {
            let r = counter.on_settle(d);
            if v == q {
                return Some(RefineOutcome::Exact(r));
            }
            // q is unsettled, so Rank(p,q) ≥ r: abort once that exceeds kRank.
            if k_rank != u32::MAX && r > k_rank {
                stats.refinements_pruned += 1;
                return Some(RefineOutcome::Pruned { lower_bound: r });
            }
        }
        let (targets, weights) = graph.out_neighbors(v);
        for (t, w) in targets.iter().zip(weights.iter()) {
            if ws.relax(*t, d + *w) == RelaxOutcome::Inserted {
                stats.refinement_pushes += 1;
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::RkrIndex;
    use rkranks_graph::{distance, graph_from_edges, rank_matrix, EdgeDirection};

    fn sample() -> Graph {
        // 0 - 1 (1.0), 1 - 2 (1.0), 0 - 3 (0.5), 3 - 2 (1.0), 2 - 4 (2.0)
        graph_from_edges(
            EdgeDirection::Undirected,
            [
                (0, 1, 1.0),
                (1, 2, 1.0),
                (0, 3, 0.5),
                (3, 2, 1.0),
                (2, 4, 2.0),
            ],
        )
        .unwrap()
    }

    fn refine_pair(g: &Graph, p: u32, q: u32, k_rank: u32) -> RefineOutcome {
        let mut ws = DijkstraWorkspace::new(g.num_nodes());
        let dpq = distance(g, NodeId(p), NodeId(q));
        let mut stats = QueryStats::default();
        refine_rank(
            g,
            QuerySpec::Mono,
            &mut ws,
            NodeId(p),
            NodeId(q),
            dpq,
            k_rank,
            &mut RefineHooks::none(),
            &mut stats,
        )
    }

    #[test]
    fn exact_ranks_match_rank_matrix() {
        let g = sample();
        let m = rank_matrix(&g);
        for p in 0..g.num_nodes() {
            for q in 0..g.num_nodes() {
                if p == q {
                    continue;
                }
                let expect = m[p as usize][q as usize].unwrap();
                assert_eq!(
                    refine_pair(&g, p, q, u32::MAX),
                    RefineOutcome::Exact(expect),
                    "Rank({p},{q})"
                );
            }
        }
    }

    #[test]
    fn early_termination_on_k_rank() {
        let g = sample();
        // Rank(4, 0) is 4; with kRank = 2 the refinement must abort.
        let m = rank_matrix(&g);
        assert_eq!(m[4][0], Some(4));
        match refine_pair(&g, 4, 0, 2) {
            RefineOutcome::Pruned { lower_bound } => assert_eq!(lower_bound, 3),
            other => panic!("expected prune, got {other:?}"),
        }
    }

    #[test]
    fn k_rank_equal_to_rank_still_completes() {
        // Pruning is strict (counter > kRank): rank == kRank completes.
        let g = sample();
        assert_eq!(refine_pair(&g, 4, 0, 4), RefineOutcome::Exact(4));
    }

    #[test]
    fn stats_count_calls_and_prunes() {
        let g = sample();
        let mut ws = DijkstraWorkspace::new(g.num_nodes());
        let mut stats = QueryStats::default();
        let dpq = distance(&g, NodeId(4), NodeId(0));
        refine_rank(
            &g,
            QuerySpec::Mono,
            &mut ws,
            NodeId(4),
            NodeId(0),
            dpq,
            1,
            &mut RefineHooks::none(),
            &mut stats,
        );
        assert_eq!(stats.refinement_calls, 1);
        assert_eq!(stats.refinements_pruned, 1);
        assert!(stats.refinement_settles >= 1);
    }

    #[test]
    fn lcount_hook_increments_inserted_nodes() {
        let g = sample();
        let mut ws = DijkstraWorkspace::new(g.num_nodes());
        let mut lcount = Stamped::new(g.num_nodes() as usize, 0u32);
        lcount.reset();
        let mut stats = QueryStats::default();
        let dpq = distance(&g, NodeId(4), NodeId(0));
        let mut hooks = RefineHooks {
            lcount: Some(&mut lcount),
            index: None,
        };
        let out = refine_rank(
            &g,
            QuerySpec::Mono,
            &mut ws,
            NodeId(4),
            NodeId(0),
            dpq,
            u32::MAX,
            &mut hooks,
            &mut stats,
        );
        assert_eq!(out, RefineOutcome::Exact(4));
        // every node in S = {2, 1, 3} was inserted exactly once
        assert_eq!(lcount.get(2), 1);
        assert_eq!(lcount.get(1), 1);
        assert_eq!(lcount.get(3), 1);
        assert_eq!(lcount.get(0), 0); // q itself is never inserted
    }

    #[test]
    fn index_hook_records_exact_ranks_and_check() {
        let g = sample();
        let mut ws = DijkstraWorkspace::new(g.num_nodes());
        let mut idx = RkrIndex::empty(g.num_nodes(), 10);
        let mut stats = QueryStats::default();
        let dpq = distance(&g, NodeId(4), NodeId(0));
        let mut access = IndexAccess::Live(&mut idx);
        let mut hooks = RefineHooks {
            lcount: None,
            index: Some(&mut access),
        };
        let out = refine_rank(
            &g,
            QuerySpec::Mono,
            &mut ws,
            NodeId(4),
            NodeId(0),
            dpq,
            u32::MAX,
            &mut hooks,
            &mut stats,
        );
        assert_eq!(out, RefineOutcome::Exact(4));
        // settled nodes got exact offers: ranks of 2, 1, 3 from node 4
        let m = rank_matrix(&g);
        assert_eq!(idx.lookup(NodeId(2), NodeId(4)), Some(m[4][2].unwrap()));
        assert_eq!(idx.lookup(NodeId(1), NodeId(4)), Some(m[4][1].unwrap()));
        // the query node's rrd learned the final rank
        assert_eq!(idx.lookup(NodeId(0), NodeId(4)), Some(4));
        // check dictionary: everything unseen from 4 has rank ≥ 4
        assert_eq!(idx.check(NodeId(4)), 4);
    }

    #[test]
    fn pruned_refinement_still_raises_check_safely() {
        let g = sample();
        let mut ws = DijkstraWorkspace::new(g.num_nodes());
        let mut idx = RkrIndex::empty(g.num_nodes(), 10);
        let mut stats = QueryStats::default();
        let dpq = distance(&g, NodeId(4), NodeId(0));
        let mut access = IndexAccess::Live(&mut idx);
        let mut hooks = RefineHooks {
            lcount: None,
            index: Some(&mut access),
        };
        refine_rank(
            &g,
            QuerySpec::Mono,
            &mut ws,
            NodeId(4),
            NodeId(0),
            dpq,
            1,
            &mut hooks,
            &mut stats,
        );
        // Invariant: any v not in rrd from source 4 has Rank(4,v) ≥ check(4).
        let m = rank_matrix(&g);
        let c = idx.check(NodeId(4));
        for v in g.nodes() {
            if v == NodeId(4) || idx.lookup(v, NodeId(4)).is_some() {
                continue;
            }
            if let Some(r) = m[4][v.index()] {
                assert!(r >= c, "Rank(4,{v}) = {r} < check {c}");
            }
        }
    }

    #[test]
    fn bichromatic_counts_only_v2() {
        use crate::spec::Partition;
        let g = sample();
        // V2 = {0, 2}; candidate 4 queries q = 0.
        let part = Partition::from_v2_nodes(5, &[NodeId(0), NodeId(2)]);
        let spec = QuerySpec::Bichromatic(&part);
        let mut ws = DijkstraWorkspace::new(g.num_nodes());
        let mut stats = QueryStats::default();
        let dpq = distance(&g, NodeId(4), NodeId(0));
        let out = refine_rank(
            &g,
            spec,
            &mut ws,
            NodeId(4),
            NodeId(0),
            dpq,
            u32::MAX,
            &mut RefineHooks::none(),
            &mut stats,
        );
        // From 4: V2 node 2 (dist 2.0) is closer than 0 (dist 3.5) -> rank 2.
        assert_eq!(out, RefineOutcome::Exact(2));
    }

    #[test]
    fn unbounded_matches_bounded() {
        let g = sample();
        let m = rank_matrix(&g);
        let mut ws = DijkstraWorkspace::new(g.num_nodes());
        let mut stats = QueryStats::default();
        for p in 0..5u32 {
            for q in 0..5u32 {
                if p == q {
                    continue;
                }
                let out = refine_rank_unbounded(
                    &g,
                    QuerySpec::Mono,
                    &mut ws,
                    NodeId(p),
                    NodeId(q),
                    u32::MAX,
                    &mut stats,
                )
                .unwrap();
                assert_eq!(
                    out,
                    RefineOutcome::Exact(m[p as usize][q as usize].unwrap())
                );
            }
        }
    }

    #[test]
    fn unbounded_unreachable_is_none() {
        let g = graph_from_edges(EdgeDirection::Directed, [(0, 1, 1.0)]).unwrap();
        let mut ws = DijkstraWorkspace::new(2);
        let mut stats = QueryStats::default();
        assert_eq!(
            refine_rank_unbounded(
                &g,
                QuerySpec::Mono,
                &mut ws,
                NodeId(1),
                NodeId(0),
                u32::MAX,
                &mut stats
            ),
            None
        );
    }

    #[test]
    fn unbounded_early_termination() {
        // From 4 the settle ranks run 1, 2, 2 (tie), then q at rank 4.
        // With kRank = 1 the rank-2 settle triggers the prune; with
        // kRank = 2 no intermediate settle exceeds the bound before q
        // arrives, so the exact rank is returned (the collector rejects it).
        let g = sample();
        let mut ws = DijkstraWorkspace::new(g.num_nodes());
        let mut stats = QueryStats::default();
        let pruned = refine_rank_unbounded(
            &g,
            QuerySpec::Mono,
            &mut ws,
            NodeId(4),
            NodeId(0),
            1,
            &mut stats,
        )
        .unwrap();
        assert!(matches!(pruned, RefineOutcome::Pruned { lower_bound } if lower_bound == 2));
        let exact = refine_rank_unbounded(
            &g,
            QuerySpec::Mono,
            &mut ws,
            NodeId(4),
            NodeId(0),
            2,
            &mut stats,
        )
        .unwrap();
        assert_eq!(exact, RefineOutcome::Exact(4));
    }

    #[test]
    fn zero_distance_candidate() {
        // p at distance 0 from q (zero-weight edge): rank must be 1.
        let g = graph_from_edges(EdgeDirection::Undirected, [(0, 1, 0.0), (1, 2, 1.0)]).unwrap();
        let out = {
            let mut ws = DijkstraWorkspace::new(3);
            let mut stats = QueryStats::default();
            refine_rank(
                &g,
                QuerySpec::Mono,
                &mut ws,
                NodeId(1),
                NodeId(0),
                0.0,
                u32::MAX,
                &mut RefineHooks::none(),
                &mut stats,
            )
        };
        assert_eq!(out, RefineOutcome::Exact(1));
    }
}
