//! Shared engine context and per-worker query scratch.
//!
//! Concurrent serving splits the old monolithic `QueryEngine` state along
//! its sharing boundary:
//!
//! * [`EngineContext`] — everything a query only *reads*: the graph, the
//!   transpose (built lazily, at most once, even under concurrency), and
//!   the mono/bichromatic partition. It is `Sync`, so one context behind an
//!   `Arc` (or a plain `&`) serves any number of worker threads.
//! * [`QueryScratch`] — everything a query *writes*: the two Dijkstra
//!   workspaces and the generation-stamped per-node arrays. One per worker;
//!   cheap to create relative to the context (no `O(m)` transpose copy)
//!   and reusable across queries so steady-state queries allocate nothing.
//!
//! One private SDS driver (`run_sds`) is the single implementation
//! behind the static, dynamic, and indexed variants; the public
//! `query_*` methods are thin configurations of it. Indexed queries take an
//! [`IndexAccess`], which either mutates a live [`RkrIndex`] in place (the
//! paper's sequential-dynamic mode) or reads a frozen snapshot and logs
//! discoveries to a private [`crate::index::IndexDelta`] for a later
//! merge — the shape that lets indexed serving run on many threads.

use std::sync::{Arc, OnceLock};
use std::time::Instant;

use rkranks_graph::{
    DijkstraWorkspace, Distance, DistanceOracle, Graph, GraphError, NodeId, RelaxOutcome, Result,
    ShardSlice,
};

use crate::engine::BoundConfig;
use crate::index::{IndexAccess, IndexBuildStats, IndexDelta, IndexParams, RkrIndex};
use crate::refine::{refine_rank, refine_rank_unbounded, RefineHooks, RefineOutcome};
use crate::request::{Completion, Limits, QueryOutcome, QueryRequest, Strategy};
use crate::result::{QueryResult, TopKCollector};
use crate::scratch::Stamped;
use crate::spec::{Partition, QuerySpec};
use crate::stats::{QueryStageStats, QueryStats};
use crate::trace::{PopDecision, QueryTrace, TraceEvent};

/// Immutable, `Sync` query-evaluation state bound to one graph snapshot:
/// share it across worker threads via `&` or `Arc`, give each worker its
/// own [`QueryScratch`].
///
/// The context *owns* its graph as an `Arc<Graph>`, so it is cheap to
/// re-create per published snapshot when the graph itself evolves (see
/// `rkranks_graph::GraphStore`): a fresh context is one `Arc` clone plus
/// an empty transpose cell — the `O(n + m)` transpose is paid lazily, and
/// only for directed graphs. Constructors accept anything convertible
/// into `Arc<Graph>`: an `Arc<Graph>` (cheap, the serving path), an owned
/// `Graph`, or a `&Graph` (clones — fine for one-off contexts).
pub struct EngineContext {
    graph: Arc<Graph>,
    /// Built lazily on the first query that needs it, exactly once even
    /// when many workers race (undirected graphs are their own transpose;
    /// the cell stays empty and the copy is never paid).
    transpose: OnceLock<Graph>,
    partition: Option<Partition>,
    /// Candidate-ownership restriction for sharded serving: when set,
    /// only nodes this slice owns may be refined or returned — every
    /// other node is treated as a conduit (expandable, still counted in
    /// ranks, never a result). Shard-local answers are therefore exact
    /// over the owned candidate set, which is what makes the
    /// coordinator's scatter-gather merge rank-exact.
    shard: Option<ShardSlice>,
    /// Pluggable distance substrate for the hub strategies
    /// ([`BoundConfig::HUB`]): consulted during the SDS filter for a
    /// certified rank lower bound (every hub strictly inside `d(u, q)` is
    /// a member of `u`'s strictly-closer counted set). `None` means the
    /// hub strategies are rejected; the other strategies never look at it.
    oracle: Option<Arc<dyn DistanceOracle>>,
}

impl EngineContext {
    /// Monochromatic context (Definition 2).
    pub fn new(graph: impl Into<Arc<Graph>>) -> Self {
        Self::with_partition(graph.into(), None)
    }

    /// Bichromatic context (Definitions 3–4): `partition`'s `V2` is the
    /// counted/query class, its complement the candidate class.
    pub fn bichromatic(graph: impl Into<Arc<Graph>>, partition: Partition) -> Self {
        Self::with_partition(graph.into(), Some(partition))
    }

    fn with_partition(graph: Arc<Graph>, partition: Option<Partition>) -> Self {
        EngineContext {
            graph,
            transpose: OnceLock::new(),
            partition,
            shard: None,
            oracle: None,
        }
    }

    /// Restrict this context to the candidates `slice` owns (sharded
    /// serving). Composes with either query spec: ownership narrows
    /// `is_candidate`, never `is_counted`, so ranks keep their global
    /// meaning and per-shard answers are exact over the owned slice.
    pub fn with_shard_slice(mut self, slice: ShardSlice) -> Self {
        self.shard = Some(slice);
        self
    }

    /// The candidate-ownership slice, if this context is sharded.
    pub fn shard_slice(&self) -> Option<ShardSlice> {
        self.shard
    }

    /// Attach a [`DistanceOracle`] (hub labels or on-demand Dijkstra),
    /// enabling the `dynamic-hub` / `indexed-hub` strategies. The oracle
    /// must describe the same graph snapshot as this context — epoch
    /// discipline is the caller's job (the server rebuilds the oracle on
    /// every `GraphStore` commit, exactly like the index).
    pub fn with_oracle(mut self, oracle: Arc<dyn DistanceOracle>) -> Self {
        self.oracle = Some(oracle);
        self
    }

    /// The attached distance oracle, if any.
    pub fn oracle(&self) -> Option<&Arc<dyn DistanceOracle>> {
        self.oracle.as_ref()
    }

    /// `true` when `v` may appear in results under both the query spec
    /// and the shard slice (if any).
    #[inline(always)]
    fn owns(&self, v: NodeId) -> bool {
        self.shard.is_none_or(|s| s.owns(v))
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The underlying graph's `Arc` (cheap to clone and hand elsewhere).
    pub fn graph_arc(&self) -> &Arc<Graph> {
        &self.graph
    }

    /// The bichromatic partition, if any.
    pub fn partition(&self) -> Option<&Partition> {
        self.partition.as_ref()
    }

    /// The active query specification.
    pub fn spec(&self) -> QuerySpec<'_> {
        match &self.partition {
            Some(p) => QuerySpec::Bichromatic(p),
            None => QuerySpec::Mono,
        }
    }

    /// The graph the SDS-tree Dijkstra runs on: the transpose for directed
    /// graphs (built on first use), the graph itself otherwise.
    ///
    /// Latency-sensitive callers should invoke this once before timing
    /// queries — otherwise the first query on a directed graph pays the
    /// O(n+m) transpose build inside its `stats.elapsed`. The batch
    /// drivers and the `QueryEngine` facade do this automatically.
    pub fn sds_graph(&self) -> &Graph {
        if self.graph.is_directed() {
            self.transpose.get_or_init(|| self.graph.transpose())
        } else {
            &self.graph
        }
    }

    /// A fresh per-worker scratch sized for this context's graph.
    pub fn new_scratch(&self) -> QueryScratch {
        QueryScratch::new(self.graph.num_nodes())
    }

    /// Build an index matching this context's query spec.
    pub fn build_index(&self, params: &IndexParams) -> (RkrIndex, IndexBuildStats) {
        RkrIndex::build(&self.graph, self.spec(), params)
    }

    fn validate(&self, q: NodeId, k: u32) -> Result<()> {
        self.graph.check_node(q)?;
        if k == 0 {
            return Err(GraphError::InvalidQuery("k must be positive".into()));
        }
        self.spec().validate_query(q)?;
        Ok(())
    }

    /// Execute a [`QueryRequest`] that needs no index — the single entry
    /// point behind every `query_*` shim.
    ///
    /// [`Strategy::Indexed`] requests are rejected here (the strategy
    /// needs an index binding); hand them to
    /// [`EngineContext::execute_with`].
    pub fn execute(&self, scratch: &mut QueryScratch, req: &QueryRequest) -> Result<QueryOutcome> {
        self.execute_with(scratch, None, req)
    }

    /// Execute a [`QueryRequest`] with an optional index binding.
    ///
    /// The binding decides where [`Strategy::Indexed`] reads and writes:
    /// [`IndexAccess::Live`] is the paper's sequential-dynamic mode (the
    /// index sharpens in place), [`IndexAccess::Snapshot`] reads a frozen
    /// snapshot and logs discoveries to a per-worker delta for a later
    /// [`RkrIndex::merge_delta`] — the shape concurrent serving uses.
    /// Non-indexed strategies ignore the binding entirely. An `Indexed`
    /// request without a binding is an error.
    pub fn execute_with(
        &self,
        scratch: &mut QueryScratch,
        index: Option<&mut IndexAccess<'_>>,
        req: &QueryRequest,
    ) -> Result<QueryOutcome> {
        let limits = Limits::for_request(req);
        let mut trace = req.trace.then(QueryTrace::default);
        let (result, completion) = match req.strategy {
            Strategy::Naive => self.run_naive(scratch, req.q, req.k, &limits)?,
            Strategy::Static => {
                self.run_sds(scratch, req.q, req.k, None, None, trace.as_mut(), &limits)?
            }
            Strategy::Dynamic(bounds) => self.run_sds(
                scratch,
                req.q,
                req.k,
                Some(bounds),
                None,
                trace.as_mut(),
                &limits,
            )?,
            Strategy::Indexed(bounds) => {
                let Some(access) = index else {
                    return Err(GraphError::InvalidQuery(
                        "the indexed strategy needs an index binding \
                         (EngineContext::execute_with an IndexAccess)"
                            .into(),
                    ));
                };
                check_k_max(access.k_max(), req.k)?;
                self.run_sds(
                    scratch,
                    req.q,
                    req.k,
                    Some(bounds),
                    Some(access),
                    trace.as_mut(),
                    &limits,
                )?
            }
        };
        let stage = QueryStageStats::from_stats(&result.stats);
        Ok(QueryOutcome {
            result,
            trace,
            completion,
            stage,
        })
    }

    /// §2 naive baseline: refine every candidate (with `kRank` early
    /// termination), no SDS-tree.
    fn run_naive(
        &self,
        scratch: &mut QueryScratch,
        q: NodeId,
        k: u32,
        limits: &Limits,
    ) -> Result<(QueryResult, Completion)> {
        self.validate(q, k)?;
        scratch.ensure_capacity(self.graph.num_nodes());
        let start = Instant::now();
        let mut stats = QueryStats::default();
        let mut collector = TopKCollector::new(k);
        let mut completion = Completion::Complete;
        let spec = self.spec();
        for p in self.graph.nodes() {
            if p == q || !spec.is_candidate(p) || !self.owns(p) {
                continue;
            }
            if let Some(reason) = limits.exceeded(&stats) {
                completion = Completion::Partial {
                    reason,
                    k_rank_bound: collector.k_rank(),
                };
                break;
            }
            let refine_start = Instant::now();
            let refined = refine_rank_unbounded(
                &self.graph,
                spec,
                &mut scratch.refine_ws,
                p,
                q,
                collector.k_rank(),
                &mut stats,
            );
            stats.refine_time += refine_start.elapsed();
            if let Some(RefineOutcome::Exact(r)) = refined {
                collector.offer(p, r);
            }
        }
        stats.elapsed = start.elapsed();
        Ok((collector.into_result(stats), completion))
    }

    /// §2 naive baseline (deprecated shim over [`EngineContext::execute`]).
    #[deprecated(note = "build a QueryRequest with Strategy::Naive and call execute")]
    pub fn query_naive(
        &self,
        scratch: &mut QueryScratch,
        q: NodeId,
        k: u32,
    ) -> Result<QueryResult> {
        let req = QueryRequest::new(q, k).with_strategy(Strategy::Naive);
        Ok(self.execute(scratch, &req)?.result)
    }

    /// §3 static SDS-tree (deprecated shim over
    /// [`EngineContext::execute`]).
    #[deprecated(note = "build a QueryRequest with Strategy::Static and call execute")]
    pub fn query_static(
        &self,
        scratch: &mut QueryScratch,
        q: NodeId,
        k: u32,
    ) -> Result<QueryResult> {
        let req = QueryRequest::new(q, k).with_strategy(Strategy::Static);
        Ok(self.execute(scratch, &req)?.result)
    }

    /// §4 dynamic bounded SDS-tree (deprecated shim over
    /// [`EngineContext::execute`]).
    #[deprecated(note = "build a QueryRequest with Strategy::Dynamic and call execute")]
    pub fn query_dynamic(
        &self,
        scratch: &mut QueryScratch,
        q: NodeId,
        k: u32,
        bounds: BoundConfig,
    ) -> Result<QueryResult> {
        let req = QueryRequest::new(q, k).with_strategy(Strategy::Dynamic(bounds));
        Ok(self.execute(scratch, &req)?.result)
    }

    /// §5 dynamic SDS-tree with the index mutated in place — the paper's
    /// sequential-dynamic mode (deprecated shim over
    /// [`EngineContext::execute_with`] + [`IndexAccess::Live`]).
    #[deprecated(note = "build a QueryRequest with Strategy::Indexed and call execute_with")]
    pub fn query_indexed(
        &self,
        scratch: &mut QueryScratch,
        index: &mut RkrIndex,
        q: NodeId,
        k: u32,
        bounds: BoundConfig,
    ) -> Result<QueryResult> {
        let req = QueryRequest::new(q, k).with_strategy(Strategy::Indexed(bounds));
        Ok(self
            .execute_with(scratch, Some(&mut IndexAccess::Live(index)), &req)?
            .result)
    }

    /// §5 dynamic SDS-tree against a *frozen* index snapshot, logging every
    /// discovery to `delta` instead of mutating the snapshot (deprecated
    /// shim over [`EngineContext::execute_with`] +
    /// [`IndexAccess::Snapshot`]).
    ///
    /// Because the index only ever *prunes* work (result correctness never
    /// depends on its contents), the result ranks are identical to the
    /// dynamic strategy; what the snapshot loses versus the
    /// sequential-dynamic mode is only the intra-batch sharpening. Many
    /// workers can therefore query one snapshot concurrently and merge
    /// their deltas back later via [`RkrIndex::merge_delta`].
    #[deprecated(note = "build a QueryRequest with Strategy::Indexed and call execute_with")]
    pub fn query_indexed_snapshot(
        &self,
        scratch: &mut QueryScratch,
        snapshot: &RkrIndex,
        delta: &mut IndexDelta,
        q: NodeId,
        k: u32,
        bounds: BoundConfig,
    ) -> Result<QueryResult> {
        let req = QueryRequest::new(q, k).with_strategy(Strategy::Indexed(bounds));
        let access = &mut IndexAccess::Snapshot { snapshot, delta };
        Ok(self.execute_with(scratch, Some(access), &req)?.result)
    }

    /// Static SDS-tree with a full decision trace (deprecated shim).
    #[deprecated(note = "set QueryRequest::trace and call execute")]
    pub fn query_static_traced(
        &self,
        scratch: &mut QueryScratch,
        q: NodeId,
        k: u32,
    ) -> Result<(QueryResult, QueryTrace)> {
        let req = QueryRequest::new(q, k)
            .with_strategy(Strategy::Static)
            .with_trace();
        let out = self.execute(scratch, &req)?;
        Ok((out.result, out.trace.expect("trace was requested")))
    }

    /// Dynamic SDS-tree with a full decision trace (deprecated shim; see
    /// [`crate::trace`]).
    #[deprecated(note = "set QueryRequest::trace and call execute")]
    pub fn query_dynamic_traced(
        &self,
        scratch: &mut QueryScratch,
        q: NodeId,
        k: u32,
        bounds: BoundConfig,
    ) -> Result<(QueryResult, QueryTrace)> {
        let req = QueryRequest::new(q, k)
            .with_strategy(Strategy::Dynamic(bounds))
            .with_trace();
        let out = self.execute(scratch, &req)?;
        Ok((out.result, out.trace.expect("trace was requested")))
    }

    /// Live-indexed SDS-tree with a full decision trace (deprecated shim).
    #[deprecated(note = "set QueryRequest::trace and call execute_with")]
    pub fn query_indexed_traced(
        &self,
        scratch: &mut QueryScratch,
        index: &mut RkrIndex,
        q: NodeId,
        k: u32,
        bounds: BoundConfig,
    ) -> Result<(QueryResult, QueryTrace)> {
        let req = QueryRequest::new(q, k)
            .with_strategy(Strategy::Indexed(bounds))
            .with_trace();
        let out = self.execute_with(scratch, Some(&mut IndexAccess::Live(index)), &req)?;
        Ok((out.result, out.trace.expect("trace was requested")))
    }

    /// The shared SDS driver. `dynamic = None` is the static algorithm.
    #[allow(clippy::too_many_arguments)] // the private hub every strategy configures
    fn run_sds(
        &self,
        scratch: &mut QueryScratch,
        q: NodeId,
        k: u32,
        dynamic: Option<BoundConfig>,
        mut index: Option<&mut IndexAccess<'_>>,
        mut trace: Option<&mut QueryTrace>,
        limits: &Limits,
    ) -> Result<(QueryResult, Completion)> {
        self.validate(q, k)?;
        // The hub strategies are meaningless without a distance substrate:
        // fail loudly rather than silently degrading to dynamic-three.
        let oracle = match dynamic {
            Some(b) if b.use_oracle => Some(self.oracle.as_deref().ok_or_else(|| {
                GraphError::InvalidQuery(
                    "the hub strategy needs a distance oracle \
                     (EngineContext::with_oracle a DistanceOracle)"
                        .into(),
                )
            })?),
            _ => None,
        };
        scratch.ensure_capacity(self.graph.num_nodes());
        let start = Instant::now();
        let mut stats = QueryStats::default();
        let mut collector = TopKCollector::new(k);
        let mut completion = Completion::Complete;

        let graph = &*self.graph;
        let spec = self.spec();
        let tgraph = self.sds_graph();
        let QueryScratch {
            sds_ws,
            refine_ws,
            pred,
            depth2,
            eff_lb,
            lcount,
            in_result,
        } = scratch;
        // Lemma 4 is proven for undirected monochromatic graphs only.
        let count_enabled =
            dynamic.is_some_and(|b| b.use_count) && !graph.is_directed() && !spec.is_bichromatic();

        pred.reset();
        depth2.reset();
        eff_lb.reset();
        lcount.reset();
        in_result.reset();

        // §5.3: seed R (and hence kRank) from the Reverse Rank Dictionary.
        // Seeds are filtered through the candidate/ownership gates so an
        // index built for a different spec (e.g. a full-graph index
        // loaded onto a shard) can only prune, never leak a node this
        // context must not return.
        if let Some(idx) = index.as_deref() {
            for &(r, s) in idx.top_entries(q, k) {
                if spec.is_candidate(s) && self.owns(s) && collector.offer(s, r) {
                    in_result.set(s.index(), true);
                }
            }
        }

        let record = |trace: &mut Option<&mut QueryTrace>, node: NodeId, distance, decision| {
            if let Some(t) = trace.as_deref_mut() {
                t.events.push(TraceEvent {
                    node,
                    distance,
                    decision,
                });
            }
        };

        sds_ws.begin(q);
        while let Some((u, d)) = sds_ws.settle_next() {
            // Best-effort limits, checked at refinement granularity: a
            // tripped limit keeps everything refined so far (all entries
            // in `R` carry exact ranks) and reports the current `kRank`
            // as the bound the complete answer cannot exceed.
            if let Some(reason) = limits.exceeded(&stats) {
                completion = Completion::Partial {
                    reason,
                    k_rank_bound: collector.k_rank(),
                };
                break;
            }
            stats.sds_popped += 1;
            if u == q {
                record(&mut trace, u, d, PopDecision::Root);
                expand(tgraph, spec, q, sds_ws, pred, depth2, &mut stats, u, d);
                continue;
            }
            let parent_lb = match pred.get(u.index()) {
                p if p == u32::MAX || NodeId(p) == q => 0,
                p => eff_lb.get(p as usize),
            };
            let k_rank = collector.k_rank();

            if !spec.is_candidate(u) || !self.owns(u) {
                // Conduit node (bichromatic `V2`, or a candidate another
                // shard owns): it cannot be a result here, but shortest
                // paths run through it. Propagate the ancestor bound;
                // prune the subtree when even the weakest candidate
                // descendant bound meets kRank.
                eff_lb.set(u.index(), parent_lb);
                let descendant_lb = if dynamic.is_some_and(|b| b.use_height) {
                    // any candidate below u has at least depth2(u) + [u
                    // counted] counted intermediates
                    parent_lb.max(depth2.get(u.index()) + spec.is_counted(u) as u32 + 1)
                } else {
                    parent_lb
                };
                let subtree_pruned = dynamic.is_some() && descendant_lb >= k_rank;
                record(&mut trace, u, d, PopDecision::Conduit { subtree_pruned });
                if !subtree_pruned {
                    expand(tgraph, spec, q, sds_ws, pred, depth2, &mut stats, u, d);
                }
                continue;
            }

            if let Some(bounds) = dynamic {
                // Index fast path: the exact rank is already known.
                if let Some(r) = index.as_deref().and_then(|idx| idx.lookup(q, u)) {
                    stats.index_exact_hits += 1;
                    record(&mut trace, u, d, PopDecision::IndexHit { rank: r });
                    eff_lb.set(u.index(), r);
                    if !in_result.get(u.index()) && collector.offer(u, r) {
                        in_result.set(u.index(), true);
                    }
                    if r <= collector.k_rank() {
                        expand(tgraph, spec, q, sds_ws, pred, depth2, &mut stats, u, d);
                    }
                    continue;
                }

                // Theorem 2 (+ check dictionary) lower bound.
                let height_b = if bounds.use_height {
                    depth2.get(u.index()) + 1
                } else {
                    0
                };
                let count_b = if count_enabled {
                    lcount.get(u.index())
                } else {
                    0
                };
                let check_b = index.as_deref().map_or(0, |idx| idx.check(u));
                // Oracle lower bound (hub strategies): every hub strictly
                // inside `d(u, q)` on `u`'s out-label is a certified member
                // of the strictly-closer counted set, so
                // `1 + |{h : d(u,h) < d(u,q)}|` never exceeds the true rank.
                // `q` itself is excluded (ranks never count the query node);
                // `u` is excluded by the oracle. Sound on directed and
                // bichromatic graphs alike, unlike Lemma 4.
                let hub_b = match oracle {
                    Some(o) => {
                        stats.oracle_lookups += 1;
                        1 + o.count_within(u, d, &mut |h| h != q && spec.is_counted(h))
                    }
                    None => 0,
                };
                record_bound_win(&mut stats, parent_lb, height_b, count_b, check_b);
                let lb = parent_lb.max(height_b).max(count_b).max(check_b).max(hub_b);
                if lb >= k_rank {
                    stats.pruned_by_bound += 1;
                    if hub_b >= k_rank {
                        stats.pruned_by_oracle += 1;
                    }
                    record(
                        &mut trace,
                        u,
                        d,
                        PopDecision::BoundPruned {
                            lower_bound: lb,
                            k_rank,
                        },
                    );
                    eff_lb.set(u.index(), lb);
                    continue; // Theorem 1: the subtree is pruned with it
                }
            }

            // Rank refinement (Algorithm 2 / 4).
            let mut hooks = RefineHooks {
                lcount: count_enabled.then_some(&mut *lcount),
                index: index.as_deref_mut(),
            };
            let refine_start = Instant::now();
            let refined = refine_rank(
                graph, spec, refine_ws, u, q, d, k_rank, &mut hooks, &mut stats,
            );
            stats.refine_time += refine_start.elapsed();
            match refined {
                RefineOutcome::Exact(r) => {
                    eff_lb.set(u.index(), r);
                    let entered = collector.offer(u, r);
                    if entered {
                        in_result.set(u.index(), true);
                    }
                    record(
                        &mut trace,
                        u,
                        d,
                        PopDecision::Refined {
                            rank: r,
                            entered_result: entered,
                        },
                    );
                    // Algorithm 1/3: completed refinement ⇒ expand.
                    expand(tgraph, spec, q, sds_ws, pred, depth2, &mut stats, u, d);
                }
                RefineOutcome::Pruned { lower_bound } => {
                    record(
                        &mut trace,
                        u,
                        d,
                        PopDecision::RefinementPruned { lower_bound },
                    );
                    eff_lb.set(u.index(), lower_bound.max(parent_lb));
                    // Theorem 1: no expansion.
                }
            }
        }

        stats.elapsed = start.elapsed();
        Ok((collector.into_result(stats), completion))
    }
}

fn check_k_max(k_max: u32, k: u32) -> Result<()> {
    if k > k_max {
        return Err(GraphError::InvalidQuery(format!(
            "k = {k} exceeds the index's K = {k_max} (the check-dictionary prune would be unsound)"
        )));
    }
    Ok(())
}

/// Per-worker mutable query state: the Dijkstra workspaces and the
/// generation-stamped per-node arrays. Everything resets in O(1) between
/// queries, so a long-lived scratch makes queries allocation-free after
/// warm-up.
#[derive(Debug)]
pub struct QueryScratch {
    /// SDS-tree (transpose) Dijkstra state.
    pub(crate) sds_ws: DijkstraWorkspace,
    /// Rank-refinement Dijkstra state.
    pub(crate) refine_ws: DijkstraWorkspace,
    /// SDS-tree parent of each frontier/settled node.
    pub(crate) pred: Stamped<u32>,
    /// Counted-class intermediate-node depth (degenerates to `depth - 1`
    /// monochromatically); the Lemma-2 bound is `depth2 + 1`.
    pub(crate) depth2: Stamped<u32>,
    /// Effective rank lower bound of each processed node (exact rank when
    /// refined) — what descendants inherit as their "parent rank".
    pub(crate) eff_lb: Stamped<u32>,
    /// Lemma-4 visit counters.
    pub(crate) lcount: Stamped<u32>,
    /// Marks nodes currently credited in `R` (prevents double offers when
    /// the index seeds the collector).
    pub(crate) in_result: Stamped<bool>,
}

impl QueryScratch {
    /// Scratch for graphs with up to `n` nodes (it grows on demand if a
    /// larger graph shows up).
    pub fn new(n: u32) -> Self {
        QueryScratch {
            sds_ws: DijkstraWorkspace::new(n),
            refine_ws: DijkstraWorkspace::new(n),
            pred: Stamped::new(n as usize, u32::MAX),
            depth2: Stamped::new(n as usize, 0),
            eff_lb: Stamped::new(n as usize, 0),
            lcount: Stamped::new(n as usize, 0),
            in_result: Stamped::new(n as usize, false),
        }
    }

    /// Grow every component to hold at least `n` nodes.
    pub fn ensure_capacity(&mut self, n: u32) {
        self.sds_ws.ensure_capacity(n);
        self.refine_ws.ensure_capacity(n);
        self.pred.ensure_capacity(n as usize);
        self.depth2.ensure_capacity(n as usize);
        self.eff_lb.ensure_capacity(n as usize);
        self.lcount.ensure_capacity(n as usize);
        self.in_result.ensure_capacity(n as usize);
    }
}

/// Relax `u`'s out-edges in the transpose graph, recording tree parents and
/// counted-depths for Theorem 2.
#[allow(clippy::too_many_arguments)]
fn expand(
    tgraph: &Graph,
    spec: QuerySpec<'_>,
    q: NodeId,
    sds_ws: &mut DijkstraWorkspace,
    pred: &mut Stamped<u32>,
    depth2: &mut Stamped<u32>,
    stats: &mut QueryStats,
    u: NodeId,
    d: Distance,
) {
    // `u` becomes an intermediate node of everything routed through it; it
    // contributes to the Lemma-2 bound only if it is counted and not `q`
    // (ranks never count the query node or the candidate itself).
    let child_depth2 = depth2.get(u.index()) + (u != q && spec.is_counted(u)) as u32;
    let (targets, weights) = tgraph.out_neighbors(u);
    for (t, w) in targets.iter().zip(weights.iter()) {
        stats.sds_relaxations += 1;
        match sds_ws.relax(*t, d + *w) {
            RelaxOutcome::Inserted | RelaxOutcome::Decreased => {
                pred.set(t.index(), u.0);
                depth2.set(t.index(), child_depth2);
            }
            RelaxOutcome::Unchanged => {}
        }
    }
}

/// Table 11 bookkeeping: which component supplied the max. Ties resolve in
/// the paper's "tight-most first" narrative order: parent, height, count,
/// check.
fn record_bound_win(stats: &mut QueryStats, parent: u32, height: u32, count: u32, check: u32) {
    let best = parent.max(height).max(count).max(check);
    let w = &mut stats.bound_wins;
    if parent == best {
        w.parent += 1;
    } else if height == best {
        w.height += 1;
    } else if count == best {
        w.count += 1;
    } else {
        w.check += 1;
    }
}

#[cfg(test)]
mod tests {
    // The deprecated `query_*` shims are exercised on purpose: these
    // tests double as equivalence tests between the old surface and the
    // `execute` path it now delegates to.
    #![allow(deprecated)]

    use super::*;
    use crate::index::IndexDelta;
    use rkranks_graph::{graph_from_edges, EdgeDirection};

    fn star_tail() -> Graph {
        graph_from_edges(
            EdgeDirection::Undirected,
            [(0, 1, 1.0), (0, 2, 2.0), (0, 3, 3.0), (3, 4, 1.0)],
        )
        .unwrap()
    }

    #[test]
    fn context_is_sync_and_shareable() {
        fn assert_sync<T: Sync>() {}
        assert_sync::<EngineContext>();
    }

    #[test]
    fn one_context_serves_many_scratches() {
        let g = star_tail();
        let ctx = EngineContext::new(&g);
        let mut a = ctx.new_scratch();
        let mut b = ctx.new_scratch();
        let ra = ctx
            .query_dynamic(&mut a, NodeId(0), 2, BoundConfig::ALL)
            .unwrap();
        let rb = ctx
            .query_dynamic(&mut b, NodeId(0), 2, BoundConfig::ALL)
            .unwrap();
        assert_eq!(ra.entries, rb.entries);
    }

    #[test]
    fn concurrent_workers_share_one_context() {
        // Directed so the lazily-built transpose is exercised under racing
        // first use.
        let g = graph_from_edges(
            EdgeDirection::Directed,
            [
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 3, 1.0),
                (3, 0, 1.0),
                (1, 3, 2.0),
            ],
        )
        .unwrap();
        // Expected values come from a separate context so the shared one
        // below still has an uninitialized transpose when the workers race
        // on its first use.
        let expected: Vec<_> = {
            let ref_ctx = EngineContext::new(&g);
            let mut s = ref_ctx.new_scratch();
            g.nodes()
                .map(|q| {
                    ref_ctx
                        .query_dynamic(&mut s, q, 2, BoundConfig::ALL)
                        .unwrap()
                        .entries
                })
                .collect()
        };
        let ctx = EngineContext::new(&g);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let mut s = ctx.new_scratch();
                    for (q, want) in g.nodes().zip(&expected) {
                        let got = ctx.query_dynamic(&mut s, q, 2, BoundConfig::ALL).unwrap();
                        assert_eq!(&got.entries, want, "q={q}");
                    }
                });
            }
        });
    }

    #[test]
    fn snapshot_queries_match_dynamic_and_merge_back() {
        let g = star_tail();
        let ctx = EngineContext::new(&g);
        let mut scratch = ctx.new_scratch();
        let mut index = RkrIndex::empty(g.num_nodes(), 10);
        let mut delta = IndexDelta::for_index(&index);
        for q in g.nodes() {
            let want = ctx
                .query_dynamic(&mut scratch, q, 2, BoundConfig::ALL)
                .unwrap();
            let got = ctx
                .query_indexed_snapshot(&mut scratch, &index, &mut delta, q, 2, BoundConfig::ALL)
                .unwrap();
            assert_eq!(want.ranks(), got.ranks(), "q={q}");
        }
        // The snapshot itself never changed...
        assert_eq!(index.rrd_entries(), 0);
        // ...but the delta captured the discoveries, and merging them makes
        // a repeat query hit the dictionary.
        assert!(!delta.is_empty());
        index.merge_delta(&delta);
        assert!(index.rrd_entries() > 0);
        let r = ctx
            .query_indexed(&mut scratch, &mut index, NodeId(0), 2, BoundConfig::ALL)
            .unwrap();
        assert!(r.stats.index_exact_hits > 0);
    }

    #[test]
    fn parallel_snapshot_workers_match_dynamic() {
        let g = star_tail();
        let ctx = EngineContext::new(&g);
        let (index, _) = ctx.build_index(&IndexParams {
            hub_fraction: 0.5,
            prefix_fraction: 0.5,
            k_max: 8,
            ..Default::default()
        });
        let expected: Vec<_> = {
            let mut s = ctx.new_scratch();
            g.nodes()
                .map(|q| {
                    ctx.query_dynamic(&mut s, q, 3, BoundConfig::ALL)
                        .unwrap()
                        .ranks()
                })
                .collect()
        };
        let index = &index;
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let mut s = ctx.new_scratch();
                    let mut delta = IndexDelta::for_index(index);
                    for (q, want) in g.nodes().zip(&expected) {
                        let got = ctx
                            .query_indexed_snapshot(
                                &mut s,
                                index,
                                &mut delta,
                                q,
                                3,
                                BoundConfig::ALL,
                            )
                            .unwrap();
                        assert_eq!(&got.ranks(), want, "q={q}");
                    }
                });
            }
        });
    }

    #[test]
    fn sharded_contexts_partition_candidates_and_merge_exactly() {
        use rkranks_graph::ShardSlice;
        // A graph big enough that every shard owns several nodes.
        let g = graph_from_edges(
            EdgeDirection::Undirected,
            (0..40u32)
                .map(|i| (i, (i + 1) % 40, 1.0 + f64::from(i % 5)))
                .chain((0..20u32).map(|i| (i, i + 20, 2.0)))
                .collect::<Vec<_>>(),
        )
        .unwrap();
        const K: u32 = 4;
        const SHARDS: u32 = 3;
        const SEED: u64 = 0xFEED;
        let whole = EngineContext::new(&g);
        let mut scratch = whole.new_scratch();
        let shard_ctxs: Vec<_> = (0..SHARDS)
            .map(|i| EngineContext::new(&g).with_shard_slice(ShardSlice::new(i, SHARDS, SEED)))
            .collect();
        for q in g.nodes() {
            let want = whole
                .query_dynamic(&mut scratch, q, K, BoundConfig::ALL)
                .unwrap();
            // Scatter: each shard answers over its owned candidates...
            let mut merged: Vec<(u32, NodeId)> = Vec::new();
            for ctx in &shard_ctxs {
                let part = ctx
                    .query_dynamic(&mut scratch, q, K, BoundConfig::ALL)
                    .unwrap();
                for e in &part.entries {
                    // no shard ever returns a candidate it does not own
                    assert!(
                        ctx.shard_slice().unwrap().owns(e.node),
                        "q={q} leaked {}",
                        e.node
                    );
                    merged.push((e.rank, e.node));
                }
            }
            // ...gather: the k smallest of the union reproduce the
            // single-box rank multiset exactly.
            merged.sort_unstable();
            merged.truncate(K as usize);
            let got: Vec<u32> = merged.iter().map(|&(r, _)| r).collect();
            assert_eq!(got, want.ranks(), "q={q}");
        }
    }

    #[test]
    fn sharded_index_seeds_cannot_leak_foreign_candidates() {
        use rkranks_graph::ShardSlice;
        let g = star_tail();
        // Build a full-graph index, then query through a sharded context
        // seeded from it: results must stay within the owned slice and
        // rank-merge exactly like the dynamic strategy.
        let whole = EngineContext::new(&g);
        let (index, _) = whole.build_index(&IndexParams {
            hub_fraction: 1.0,
            prefix_fraction: 1.0,
            k_max: 8,
            ..Default::default()
        });
        let mut scratch = whole.new_scratch();
        for q in g.nodes() {
            let want = whole
                .query_dynamic(&mut scratch, q, 2, BoundConfig::ALL)
                .unwrap();
            let mut merged: Vec<(u32, NodeId)> = Vec::new();
            for i in 0..2 {
                let ctx = EngineContext::new(&g).with_shard_slice(ShardSlice::new(i, 2, 99));
                let mut delta = IndexDelta::for_index(&index);
                let part = ctx
                    .query_indexed_snapshot(
                        &mut scratch,
                        &index,
                        &mut delta,
                        q,
                        2,
                        BoundConfig::ALL,
                    )
                    .unwrap();
                for e in &part.entries {
                    assert!(
                        ctx.shard_slice().unwrap().owns(e.node),
                        "q={q} leaked {}",
                        e.node
                    );
                    merged.push((e.rank, e.node));
                }
            }
            merged.sort_unstable();
            merged.truncate(2);
            let got: Vec<u32> = merged.iter().map(|&(r, _)| r).collect();
            assert_eq!(got, want.ranks(), "q={q}");
        }
    }

    #[test]
    fn hub_strategy_without_an_oracle_is_rejected() {
        let g = star_tail();
        let ctx = EngineContext::new(&g);
        let mut s = ctx.new_scratch();
        let err = ctx
            .query_dynamic(&mut s, NodeId(0), 2, BoundConfig::HUB)
            .unwrap_err();
        assert!(err.to_string().contains("oracle"), "{err}");
    }

    #[test]
    fn hub_oracle_queries_match_dynamic_exactly() {
        use rkranks_graph::{HubLabels, HubOrder};
        let g = graph_from_edges(
            EdgeDirection::Undirected,
            (0..40u32)
                .map(|i| (i, (i + 1) % 40, 1.0 + f64::from(i % 5)))
                .chain((0..20u32).map(|i| (i, i + 20, 2.0)))
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let plain = EngineContext::new(&g);
        let (labels, _) = HubLabels::build(&g, HubOrder::Degree, 0);
        let hub = EngineContext::new(&g).with_oracle(Arc::new(labels));
        let mut scratch = plain.new_scratch();
        let mut lookups = 0;
        for q in g.nodes() {
            let want = plain
                .query_dynamic(&mut scratch, q, 4, BoundConfig::ALL)
                .unwrap();
            let got = hub
                .query_dynamic(&mut scratch, q, 4, BoundConfig::HUB)
                .unwrap();
            assert_eq!(want.ranks(), got.ranks(), "q={q}");
            lookups += got.stats.oracle_lookups;
        }
        assert!(lookups > 0, "the hub strategy never consulted the oracle");
    }

    #[test]
    fn hub_oracle_matches_on_directed_graphs() {
        use rkranks_graph::{HubLabels, HubOrder};
        let g = graph_from_edges(
            EdgeDirection::Directed,
            [
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 3, 1.0),
                (3, 0, 1.0),
                (1, 3, 2.0),
                (3, 1, 4.0),
            ],
        )
        .unwrap();
        let plain = EngineContext::new(&g);
        let (labels, _) = HubLabels::build(&g, HubOrder::Degree, 0);
        let hub = EngineContext::new(&g).with_oracle(Arc::new(labels));
        let mut scratch = plain.new_scratch();
        for q in g.nodes() {
            let want = plain
                .query_dynamic(&mut scratch, q, 2, BoundConfig::ALL)
                .unwrap();
            let got = hub
                .query_dynamic(&mut scratch, q, 2, BoundConfig::HUB)
                .unwrap();
            assert_eq!(want.ranks(), got.ranks(), "q={q}");
        }
    }

    #[test]
    fn dijkstra_oracle_backend_is_rank_identical_too() {
        use rkranks_graph::DijkstraOracle;
        let g = star_tail();
        let plain = EngineContext::new(&g);
        let oracle = DijkstraOracle::new(Arc::new(g.clone()), 0);
        let hub = EngineContext::new(&g).with_oracle(Arc::new(oracle));
        let mut scratch = plain.new_scratch();
        for q in g.nodes() {
            let want = plain
                .query_dynamic(&mut scratch, q, 2, BoundConfig::ALL)
                .unwrap();
            let got = hub
                .query_dynamic(&mut scratch, q, 2, BoundConfig::HUB)
                .unwrap();
            assert_eq!(want.ranks(), got.ranks(), "q={q}");
        }
    }

    #[test]
    fn record_bound_win_tie_precedence() {
        let mut stats = QueryStats::default();
        record_bound_win(&mut stats, 2, 2, 1, 0);
        assert_eq!(stats.bound_wins.parent, 1); // parent wins ties
        record_bound_win(&mut stats, 1, 2, 2, 2);
        assert_eq!(stats.bound_wins.height, 1); // then height
        record_bound_win(&mut stats, 0, 1, 2, 2);
        assert_eq!(stats.bound_wins.count, 1); // then count
        record_bound_win(&mut stats, 0, 0, 0, 1);
        assert_eq!(stats.bound_wins.check, 1);
    }

    #[test]
    fn scratch_grows_to_larger_graphs() {
        let small = star_tail();
        let big = graph_from_edges(
            EdgeDirection::Undirected,
            (0..20u32).map(|i| (i, i + 1, 1.0)).collect::<Vec<_>>(),
        )
        .unwrap();
        let mut scratch = QueryScratch::new(small.num_nodes());
        let ctx = EngineContext::new(&big);
        let r = ctx
            .query_dynamic(&mut scratch, NodeId(0), 2, BoundConfig::ALL)
            .unwrap();
        assert_eq!(r.entries.len(), 2);
    }
}
