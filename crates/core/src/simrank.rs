//! Extension: reverse k-ranks under SimRank proximity (§8 future work).
//!
//! Analogous to the [`crate::ppr`] extension: proximity of `t` from `s` is
//! `s(s, t)` (higher = closer), and
//!
//! ```text
//! RankSR(s, t) = |{ v ≠ s : s(s, v) > s(s, t) }| + 1.
//! ```
//!
//! Because SimRank is symmetric (`s(a,b) = s(b,a)`), reverse k-ranks under
//! SimRank has a structure shortest-path ranks lack: `q`'s *own* ranking
//! of others and others' rankings of `q` are built from the same scores —
//! but the *ranks* still differ (each node normalizes by its own score
//! distribution), so the query remains meaningful. The exact baseline
//! below computes the matrix once per query; pruning this is exactly the
//! "radically different approaches" the paper leaves open.

use rkranks_graph::simrank::{simrank_matrix, SimRankParams};
use rkranks_graph::{Graph, GraphError, NodeId, Result};

use crate::result::{QueryResult, TopKCollector};
use crate::stats::QueryStats;
use std::time::Instant;

/// `RankSR(s, t)` from a precomputed SimRank matrix.
/// `None` when `s(s,t) = 0` (no structural similarity at all).
pub fn simrank_rank(matrix: &[Vec<f64>], s: NodeId, t: NodeId) -> Option<u32> {
    let row = &matrix[s.index()];
    let t_score = row[t.index()];
    if t_score <= 0.0 {
        return None;
    }
    let higher = row
        .iter()
        .enumerate()
        .filter(|&(v, &score)| v != s.index() && v != t.index() && score > t_score)
        .count() as u32;
    Some(higher + 1)
}

/// Reverse k-ranks under SimRank proximity: the `k` nodes `p` minimizing
/// `RankSR(p, q)`. Exact baseline — O(iterations·|V|²·d²) for the matrix
/// plus O(|V|²) for the ranking; small graphs only.
pub fn reverse_k_ranks_simrank(
    graph: &Graph,
    q: NodeId,
    k: u32,
    params: &SimRankParams,
) -> Result<QueryResult> {
    graph.check_node(q)?;
    if k == 0 {
        return Err(GraphError::InvalidQuery("k must be positive".into()));
    }
    let start = Instant::now();
    let mut stats = QueryStats::default();
    let matrix = simrank_matrix(graph, params);
    let mut collector = TopKCollector::new(k);
    for p in graph.nodes() {
        if p == q {
            continue;
        }
        stats.refinement_calls += 1;
        if let Some(r) = simrank_rank(&matrix, p, q) {
            collector.offer(p, r);
        }
    }
    stats.elapsed = start.elapsed();
    Ok(collector.into_result(stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rkranks_graph::{graph_from_edges, EdgeDirection};

    fn params() -> SimRankParams {
        SimRankParams {
            decay: 0.8,
            iterations: 8,
        }
    }

    /// 3 -> {0, 1}; {0, 1} -> 2: nodes 0 and 1 are structural twins.
    fn twins() -> Graph {
        graph_from_edges(
            EdgeDirection::Directed,
            [(3, 0, 1.0), (3, 1, 1.0), (0, 2, 1.0), (1, 2, 1.0)],
        )
        .unwrap()
    }

    #[test]
    fn twins_rank_each_other_first() {
        let g = twins();
        let m = simrank_matrix(&g, &params());
        assert_eq!(simrank_rank(&m, NodeId(0), NodeId(1)), Some(1));
        assert_eq!(simrank_rank(&m, NodeId(1), NodeId(0)), Some(1));
    }

    #[test]
    fn zero_similarity_is_unranked() {
        let g = twins();
        let m = simrank_matrix(&g, &params());
        // node 3 has no in-neighbors: s(3, anything) = 0
        assert_eq!(simrank_rank(&m, NodeId(0), NodeId(3)), None);
    }

    #[test]
    fn reverse_query_matches_per_pair_ranks() {
        let g = twins();
        let q = NodeId(1);
        let res = reverse_k_ranks_simrank(&g, q, 2, &params()).unwrap();
        let m = simrank_matrix(&g, &params());
        let mut expect: Vec<(u32, NodeId)> = g
            .nodes()
            .filter(|&p| p != q)
            .filter_map(|p| simrank_rank(&m, p, q).map(|r| (r, p)))
            .collect();
        expect.sort_unstable();
        expect.truncate(2);
        assert_eq!(
            res.ranks(),
            expect.iter().map(|&(r, _)| r).collect::<Vec<_>>()
        );
        // the structural twin is the top answer
        assert_eq!(res.entries[0].node, NodeId(0));
    }

    #[test]
    fn result_size_bounded_by_similar_nodes() {
        let g = twins();
        // q = 3 has zero similarity to everyone (no in-neighbors): empty result.
        let res = reverse_k_ranks_simrank(&g, NodeId(3), 2, &params()).unwrap();
        assert!(res.entries.is_empty());
    }

    #[test]
    fn invalid_queries_rejected() {
        let g = twins();
        assert!(reverse_k_ranks_simrank(&g, NodeId(0), 0, &params()).is_err());
        assert!(reverse_k_ranks_simrank(&g, NodeId(9), 1, &params()).is_err());
    }
}
