//! The per-connection shard pool: one [`Client`] per shard, connected
//! lazily with retry/backoff, handshake-verified, and driven as a
//! pipelined scatter-gather unit.
//!
//! ## Why the merge is exact
//!
//! Every shard serves the *full* replicated graph but refines and
//! returns only the candidates it owns under the consistent-hash map
//! ([`rkranks_graph::ShardMap`]). Ownership partitions the candidate
//! set, and each owned candidate's rank is computed against the whole
//! graph — so per-shard answers are exact over disjoint slices, and the
//! global top-k rank multiset is contained in the union of the per-shard
//! top-k sets. Concatenating the per-shard entries, sorting by
//! `(rank, node)`, and truncating to `k` therefore reproduces the
//! single-box answer exactly — provided every reply describes the *same
//! graph*, which is why the fan-out refuses to merge replies whose graph
//! epochs disagree and instead flushes the lagging shards and re-asks
//! them (bounded).
//!
//! ## Degradation
//!
//! A shard that cannot be reached (after one in-round reconnect) is
//! dropped from the merge and the answer is flagged
//! [`partial`](rkranks_server::QueryReply::partial): every returned rank
//! is still exact, but candidates owned by the dead shard may be
//! missing — the same contract a deadline-tripped single-box partial
//! already has. Batch replies have no partial channel on the wire, so a
//! dead shard fails a batch loudly instead.

use std::sync::Arc;
use std::time::{Duration, Instant};

use rkranks_server::{Client, ConnectPolicy, QueryReply, Reply, Request};

use crate::metrics::CoordMetrics;
use crate::CoordConfig;

/// How many epoch-realignment rounds a query tolerates before giving up.
/// Writes serialize behind the coordinator's write gate, so a round of
/// `flush` to the lagging shards converges in one pass; the bound only
/// trips when something out-of-band keeps moving a shard's graph.
const EPOCH_RETRIES: u32 = 3;

/// One shard endpoint: its address and the (lazily established,
/// re-established after failures) connection.
struct ShardConn {
    addr: String,
    client: Option<Client>,
}

/// A verified connection pool over the whole fleet, owned by one
/// coordinator connection handler (handlers don't share sockets, so no
/// locking on the hot path).
pub struct ShardPool {
    shards: Vec<ShardConn>,
    policy: ConnectPolicy,
    reply_timeout: Duration,
    /// Shard seed agreed at the first verified handshake; later
    /// handshakes must match it.
    seed: Option<u64>,
    metrics: Arc<CoordMetrics>,
}

/// One shard's slot in a fan-out round.
enum Slot {
    /// Request written; a reply is owed.
    Sent(Instant),
    /// Connecting or writing failed before a reply was owed.
    Failed(ShardError),
}

/// Why a shard slot failed: transient transport trouble is redialed and
/// can soundly degrade a query to partial; a fatal misconfiguration
/// (failed handshake verification) means serving would be *wrong*, so it
/// refuses the request loudly instead.
enum ShardError {
    /// Connect/read/write failure — the shard may come back.
    Transient(String),
    /// The fleet is miswired (identity/seed/role mismatch, protocol
    /// skew); no amount of retrying makes merging sound.
    Fatal(String),
}

impl ShardError {
    fn into_message(self) -> String {
        match self {
            ShardError::Transient(m) | ShardError::Fatal(m) => m,
        }
    }
}

impl ShardPool {
    /// A pool over the configured fleet. No connections are made yet —
    /// the first fan-out pays for them (and verifies each handshake).
    pub fn new(config: &CoordConfig, metrics: Arc<CoordMetrics>) -> ShardPool {
        ShardPool {
            shards: config
                .shards
                .iter()
                .map(|a| ShardConn {
                    addr: a.clone(),
                    client: None,
                })
                .collect(),
            policy: config.connect,
            reply_timeout: config.shard_reply_timeout,
            seed: None,
            metrics,
        }
    }

    /// Fleet size.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// True for an (invalid, rejected at config time) empty fleet.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Connect shard `i` if it isn't connected, verifying the handshake:
    /// protocol version (via [`Client::hello`]), role, and that the
    /// daemon's shard identity matches its position in the address list
    /// and the fleet's agreed seed. A daemon without a shard identity is
    /// accepted only as a single-member "fleet" (plain server behind the
    /// coordinator).
    fn ensure(&mut self, i: usize) -> Result<&mut Client, ShardError> {
        if self.shards[i].client.is_none() {
            let addr = self.shards[i].addr.clone();
            let mut client = Client::connect_with(addr.as_str(), &self.policy).map_err(|e| {
                ShardError::Transient(format!("shard {i} ({addr}): connect failed: {e}"))
            })?;
            client
                .set_read_timeout(Some(self.reply_timeout))
                .map_err(|e| ShardError::Transient(format!("shard {i} ({addr}): {e}")))?;
            let hello = client.hello().map_err(|e| match e {
                // A version mismatch comes back as a Protocol error —
                // skew never heals by redialing.
                rkranks_server::ClientError::Protocol(m) => {
                    ShardError::Fatal(format!("shard {i} ({addr}): {m}"))
                }
                e => ShardError::Transient(format!("shard {i} ({addr}): handshake failed: {e}")),
            })?;
            if hello.role == "coord" {
                return Err(ShardError::Fatal(format!(
                    "shard {i} ({addr}) is another coordinator — coordinators \
                     front rkrd shards, not each other"
                )));
            }
            match hello.shard {
                Some(id) => {
                    if id.shards as usize != self.shards.len() || id.index as usize != i {
                        return Err(ShardError::Fatal(format!(
                            "shard {i} ({addr}) identifies as shard {}/{} — the --shards \
                             list must name every shard once, in shard-id order",
                            id.index, id.shards
                        )));
                    }
                    if *self.seed.get_or_insert(id.seed) != id.seed {
                        return Err(ShardError::Fatal(format!(
                            "shard {i} ({addr}) was partitioned with seed {} but the fleet \
                             agreed on {} — all shards must share one shard-plan",
                            id.seed,
                            self.seed.unwrap()
                        )));
                    }
                }
                None if self.shards.len() == 1 => {}
                None => {
                    return Err(ShardError::Fatal(format!(
                        "shard {i} ({addr}) is not running with a shard identity \
                         (--shard-id/--shard-count); an unsharded daemon can only sit \
                         behind a single-shard coordinator"
                    )));
                }
            }
            self.metrics.graph_epoch.set(hello.graph_epoch);
            self.metrics.graph_nodes.set(hello.nodes);
            self.metrics.graph_edges.set(hello.edges);
            self.shards[i].client = Some(client);
        }
        Ok(self.shards[i].client.as_mut().unwrap())
    }

    /// Drop shard `i`'s connection so the next `ensure` redials it.
    fn disconnect(&mut self, i: usize) {
        self.shards[i].client = None;
    }

    /// One pipelined fan-out round: write `req` to every shard in `idxs`,
    /// then collect the replies in order. A shard that fails at either
    /// phase gets its connection dropped (the next round redials) and an
    /// `Err` slot; the round itself never fails.
    fn fan_out(&mut self, idxs: &[usize], req: &Request) -> Vec<Result<Reply, ShardError>> {
        self.metrics.fanouts.inc();
        self.metrics.fanout_width.record(idxs.len() as u64);
        let mut slots: Vec<Slot> = Vec::with_capacity(idxs.len());
        for &i in idxs {
            let sent = self.ensure(i).and_then(|c| {
                c.send(req)
                    .map_err(|e| ShardError::Transient(e.to_string()))
            });
            match sent {
                Ok(()) => slots.push(Slot::Sent(Instant::now())),
                Err(e) => {
                    self.disconnect(i);
                    if let Some(c) = self.metrics.shard_errors.get(i) {
                        c.inc();
                    }
                    slots.push(Slot::Failed(e));
                }
            }
        }
        idxs.iter()
            .zip(slots)
            .map(|(&i, slot)| match slot {
                Slot::Failed(e) => Err(e),
                Slot::Sent(start) => {
                    let got = self.shards[i]
                        .client
                        .as_mut()
                        .expect("sent on a live connection")
                        .recv();
                    self.metrics.record_shard(i, start.elapsed());
                    match got {
                        Ok(reply) => Ok(reply),
                        // The shard is healthy and *answered* with an
                        // error — that is a reply, not a dead peer.
                        Err(rkranks_server::ClientError::Server(msg)) => Ok(Reply::Error(msg)),
                        Err(e) => {
                            self.disconnect(i);
                            if let Some(c) = self.metrics.shard_errors.get(i) {
                                c.inc();
                            }
                            Err(ShardError::Transient(format!(
                                "shard {i} ({}): {e}",
                                self.shards[i].addr
                            )))
                        }
                    }
                }
            })
            .collect()
    }

    /// Scatter one query across the fleet and gather the exact merge.
    ///
    /// Transport-dead shards get one fresh-connection retry, then are
    /// soundly dropped (partial answer). Mixed graph epochs trigger a
    /// bounded flush-and-reask loop against the lagging shards only —
    /// fresh replies at the maximum epoch are kept, not recomputed.
    pub fn scatter_query(
        &mut self,
        node: u32,
        k: u32,
        cache: bool,
        strategy: Option<String>,
        deadline_ms: Option<u64>,
    ) -> Reply {
        let req = Request::Query {
            node,
            k,
            cache,
            strategy,
            deadline_ms,
        };
        let n = self.len();
        let mut replies: Vec<Option<QueryReply>> = (0..n).map(|_| None).collect();
        let mut dead: Vec<String> = Vec::new();
        let mut pending: Vec<usize> = (0..n).collect();
        let mut transport_retry_spent = false;
        let mut epoch_rounds = 0u32;
        loop {
            let mut failed = Vec::new();
            for (&i, result) in pending.iter().zip(self.fan_out(&pending, &req)) {
                match result {
                    Ok(Reply::Query(q)) => replies[i] = Some(q),
                    Ok(Reply::Error(e)) => return Reply::Error(format!("shard {i}: {e}")),
                    Ok(_) => {
                        return Reply::Error(format!(
                            "shard {i} ({}): unexpected reply shape to a query",
                            self.shards[i].addr
                        ))
                    }
                    Err(ShardError::Fatal(e)) => return Reply::Error(e),
                    Err(ShardError::Transient(e)) => failed.push((i, e)),
                }
            }
            if !failed.is_empty() && !transport_retry_spent {
                // One fresh-connection retry for the whole failed set.
                transport_retry_spent = true;
                pending = failed.iter().map(|&(i, _)| i).collect();
                continue;
            }
            dead.extend(failed.into_iter().map(|(_, e)| e));
            let live: Vec<(usize, &QueryReply)> = replies
                .iter()
                .enumerate()
                .filter_map(|(i, r)| r.as_ref().map(|q| (i, q)))
                .collect();
            if live.is_empty() {
                return Reply::Error(format!("no shard reachable: {}", dead.join("; ")));
            }
            let max_epoch = live.iter().map(|(_, q)| q.graph_epoch).max().unwrap();
            let lagging: Vec<usize> = live
                .iter()
                .filter(|(_, q)| q.graph_epoch < max_epoch)
                .map(|&(i, _)| i)
                .collect();
            if lagging.is_empty() {
                self.metrics.graph_epoch.set(max_epoch);
                return self.merge_query(&replies, k, &dead);
            }
            if epoch_rounds >= EPOCH_RETRIES {
                return Reply::Error(format!(
                    "shard graph epochs diverged (behind: {lagging:?}, epoch {max_epoch} \
                     elsewhere) and did not converge after {EPOCH_RETRIES} flush rounds — \
                     are writes bypassing the coordinator?"
                ));
            }
            // A lagging shard holds the missing commits as staged deltas
            // (writes broadcast through the coordinator); flushing forces
            // the commit, then only the laggards are re-asked.
            self.metrics.epoch_retries.inc();
            epoch_rounds += 1;
            for r in self.fan_out(&lagging, &Request::Flush) {
                // A flush failure surfaces as a dead shard on the re-ask.
                let _ = r;
            }
            for &i in &lagging {
                replies[i] = None;
            }
            pending = lagging;
        }
    }

    /// Merge per-shard query replies into the global answer. Ownership
    /// partitions candidates, so concatenate + sort `(rank, node)` +
    /// truncate is the exact single-box result (module docs prove it).
    fn merge_query(&self, replies: &[Option<QueryReply>], k: u32, dead: &[String]) -> Reply {
        let live: Vec<&QueryReply> = replies.iter().flatten().collect();
        let mut entries: Vec<(u32, u32)> = Vec::new();
        for q in &live {
            entries.extend(q.entries.iter().copied());
        }
        self.metrics.candidates_received.add(entries.len() as u64);
        entries.sort_by_key(|&(node, rank)| (rank, node));
        entries.truncate(k as usize);
        self.metrics.candidates_returned.add(entries.len() as u64);
        let partial = !dead.is_empty() || live.iter().any(|q| q.partial);
        if partial {
            self.metrics.partials.inc();
        }
        Reply::Query(QueryReply {
            entries,
            cached: live.iter().all(|q| q.cached),
            epoch: live.iter().map(|q| q.epoch).max().unwrap_or(0),
            graph_epoch: live.iter().map(|q| q.graph_epoch).max().unwrap_or(0),
            partial,
        })
    }

    /// Scatter a batch and merge each node's per-shard lists. Batches
    /// have no partial channel on the wire, so any shard failure fails
    /// the batch loudly (single queries degrade instead).
    pub fn scatter_batch(&mut self, nodes: &[u32], k: u32) -> Reply {
        let req = Request::Batch {
            nodes: nodes.to_vec(),
            k,
        };
        let all: Vec<usize> = (0..self.len()).collect();
        let mut batches = Vec::with_capacity(self.len());
        for (&i, result) in all.iter().zip(self.fan_out(&all, &req)) {
            match result {
                Ok(Reply::Batch(b)) if b.results.len() == nodes.len() => batches.push(b),
                Ok(Reply::Batch(_)) => {
                    return Reply::Error(format!("shard {i}: batch reply length mismatch"))
                }
                Ok(Reply::Error(e)) => return Reply::Error(format!("shard {i}: {e}")),
                Ok(_) => {
                    return Reply::Error(format!(
                        "shard {i} ({}): unexpected reply shape to a batch",
                        self.shards[i].addr
                    ))
                }
                Err(e) => return Reply::Error(e.into_message()),
            }
        }
        let epochs: Vec<u64> = batches.iter().map(|b| b.graph_epoch).collect();
        if epochs.iter().any(|&e| e != epochs[0]) {
            // Unlike single queries there is no sound per-node retry (a
            // shard's reported epoch covers only its *last* answer), so
            // a batch overlapping a commit fails rather than merge
            // entries computed on different graphs.
            return Reply::Error(
                "batch overlapped a graph commit (shard epochs diverged); retry the batch".into(),
            );
        }
        let mut results: Vec<Vec<(u32, u32)>> = Vec::with_capacity(nodes.len());
        for slot in 0..nodes.len() {
            let mut entries: Vec<(u32, u32)> = Vec::new();
            for b in &batches {
                entries.extend(b.results[slot].iter().copied());
            }
            self.metrics.candidates_received.add(entries.len() as u64);
            entries.sort_by_key(|&(node, rank)| (rank, node));
            entries.truncate(k as usize);
            self.metrics.candidates_returned.add(entries.len() as u64);
            results.push(entries);
        }
        Reply::Batch(rkranks_server::BatchReply {
            results,
            // The merged answer is cache-served only where every shard's
            // was; the minimum is that count's tight upper bound.
            cached: batches.iter().map(|b| b.cached).min().unwrap_or(0),
            epoch: batches.iter().map(|b| b.epoch).max().unwrap_or(0),
            graph_epoch: epochs.first().copied().unwrap_or(0),
        })
    }

    /// Broadcast a request that must succeed on *every* shard (update /
    /// flush / checkpoint / shutdown fan-out). Returns the per-shard
    /// replies, or the loud error naming which shards failed — in which
    /// case the caller must assume the fleet is no longer uniform.
    pub fn broadcast(&mut self, req: &Request) -> Result<Vec<Reply>, String> {
        let all: Vec<usize> = (0..self.len()).collect();
        let mut replies = Vec::with_capacity(self.len());
        let mut errors = Vec::new();
        for (&i, result) in all.iter().zip(self.fan_out(&all, req)) {
            match result {
                Ok(Reply::Error(e)) => errors.push(format!("shard {i}: {e}")),
                Ok(r) => replies.push(r),
                Err(e) => errors.push(e.into_message()),
            }
        }
        if errors.is_empty() {
            Ok(replies)
        } else {
            Err(errors.join("; "))
        }
    }
}
