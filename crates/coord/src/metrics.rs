//! Coordinator telemetry: every instrument the fan-out layer records
//! into, exposed through the same [`rkranks_core::Registry`] machinery
//! the shards use, under the `rkrd_coord_` prefix so one Prometheus
//! scrape config covers both tiers.

use std::sync::Arc;
use std::time::Duration;

use rkranks_core::{Counter, Gauge, Histogram, Registry};
use rkranks_server::metrics::duration_ns;

/// Registry-backed handles for everything the coordinator measures.
///
/// Per-shard instruments (`shard_seconds`, `shard_errors`) are labeled
/// `{shard="i"}` and indexed by shard position, so the hot path records
/// through a pre-resolved `Arc` instead of a label lookup.
pub struct CoordMetrics {
    /// The registry behind every handle (the `metrics` op snapshots it).
    pub registry: Registry,

    /// Single queries answered through the coordinator.
    pub queries: Arc<Counter>,
    /// Batch requests answered (each counts once, not per node).
    pub batches: Arc<Counter>,
    /// Update batches routed to the shard fleet.
    pub updates: Arc<Counter>,
    /// Fan-out rounds issued (initial rounds plus every retry round).
    pub fanouts: Arc<Counter>,
    /// Merged answers marked partial (a shard answered partial, or a
    /// shard was unreachable and the merge soundly degraded).
    pub partials: Arc<Counter>,
    /// Retry rounds forced by mixed graph epochs across shard replies.
    pub epoch_retries: Arc<Counter>,
    /// Candidate entries received from shards before the global merge.
    pub candidates_received: Arc<Counter>,
    /// Candidate entries surviving the merge truncation — together with
    /// `candidates_received` this is the coordinator's prune rate.
    pub candidates_returned: Arc<Counter>,

    /// Transport failures per shard, indexed by shard position.
    pub shard_errors: Vec<Arc<Counter>>,
    /// Send-to-reply latency per shard, indexed by shard position.
    /// Replies are collected in shard order, so a later shard's reading
    /// includes time spent draining earlier ones — it is the observed
    /// straggler profile of the pipelined fan-out, not isolated RPC time.
    pub shard_seconds: Vec<Arc<Histogram>>,

    /// Shards observed per fan-out round (drops below the fleet size
    /// exactly when dead shards are being skipped).
    pub fanout_width: Arc<Histogram>,

    /// Frontside client connections currently open.
    pub connections_open: Arc<Gauge>,
    /// Configured fleet size.
    pub shards: Arc<Gauge>,
    /// Highest graph epoch observed in any shard reply.
    pub graph_epoch: Arc<Gauge>,
    /// Nodes reported by the fleet at the last shard handshake.
    pub graph_nodes: Arc<Gauge>,
    /// Edges reported by the fleet at the last shard handshake.
    pub graph_edges: Arc<Gauge>,
}

impl CoordMetrics {
    /// Build the registry and pre-register every instrument for a fleet
    /// of `shards` shards.
    pub fn new(shards: usize) -> CoordMetrics {
        let r = Registry::new();
        let ns = 1e-9; // raw nanoseconds, rendered as seconds
        let shard_errors = (0..shards)
            .map(|i| {
                r.counter_with(
                    "rkrd_coord_shard_errors_total",
                    &[("shard", &i.to_string())],
                    "transport failures talking to this shard",
                )
            })
            .collect();
        let shard_seconds = (0..shards)
            .map(|i| {
                r.histogram_with(
                    "rkrd_coord_shard_seconds",
                    &[("shard", &i.to_string())],
                    "send-to-reply latency per shard in the pipelined fan-out",
                    ns,
                )
            })
            .collect();
        let m = CoordMetrics {
            queries: r.counter("rkrd_coord_queries_total", "queries answered"),
            batches: r.counter("rkrd_coord_batches_total", "batch requests answered"),
            updates: r.counter("rkrd_coord_updates_total", "update batches routed"),
            fanouts: r.counter("rkrd_coord_fanouts_total", "fan-out rounds issued"),
            partials: r.counter("rkrd_coord_partials_total", "merged answers marked partial"),
            epoch_retries: r.counter(
                "rkrd_coord_epoch_retries_total",
                "retry rounds forced by mixed shard graph epochs",
            ),
            candidates_received: r.counter(
                "rkrd_coord_candidates_received_total",
                "candidate entries received from shards",
            ),
            candidates_returned: r.counter(
                "rkrd_coord_candidates_returned_total",
                "candidate entries surviving the global merge",
            ),
            shard_errors,
            shard_seconds,
            fanout_width: r.histogram(
                "rkrd_coord_fanout_width",
                "shards contacted per fan-out round",
            ),
            connections_open: r.gauge("rkrd_coord_connections_open", "open client connections"),
            shards: r.gauge("rkrd_coord_shards", "configured fleet size"),
            graph_epoch: r.gauge(
                "rkrd_coord_graph_epoch",
                "highest graph epoch observed from the fleet",
            ),
            graph_nodes: r.gauge("rkrd_coord_graph_nodes", "nodes reported at the handshake"),
            graph_edges: r.gauge("rkrd_coord_graph_edges", "edges reported at the handshake"),
            registry: r,
        };
        m.shards.set(shards as u64);
        m
    }

    /// Record one shard's send-to-reply latency.
    pub fn record_shard(&self, shard: usize, elapsed: Duration) {
        if let Some(h) = self.shard_seconds.get(shard) {
            h.record(duration_ns(elapsed));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_shard_instruments_carry_the_shard_label() {
        let m = CoordMetrics::new(3);
        assert_eq!(m.shard_errors.len(), 3);
        assert_eq!(m.shard_seconds.len(), 3);
        m.shard_errors[2].inc();
        m.record_shard(1, Duration::from_micros(250));
        m.record_shard(9, Duration::from_micros(250)); // out of range: ignored
        let snap = m.registry.snapshot();
        let errors: Vec<_> = snap
            .samples
            .iter()
            .filter(|s| s.name == "rkrd_coord_shard_errors_total")
            .collect();
        assert_eq!(errors.len(), 3);
        assert_eq!(errors[2].labels, vec![("shard".into(), "2".into())]);
        assert_eq!(m.shard_errors[2].get(), 1);
        assert_eq!(m.shard_seconds[1].count(), 1);
        assert_eq!(m.shards.get(), 3);
    }
}
