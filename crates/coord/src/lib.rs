//! # rkranks-coord
//!
//! The scatter-gather coordinator for **sharded rkrd serving**: one
//! daemon (`rkr coord`) that speaks the same newline-delimited JSON
//! protocol as `rkrd` on its front side and fans every request out to a
//! fleet of per-partition `rkrd` shards behind it.
//!
//! ## Deployment model
//!
//! The fleet replicates the *edge list* and partitions the *candidate
//! work*: every shard loads the full graph, but shard `i` of `n`
//! (started with `rkr serve --shard-id i --shard-count n`) refines and
//! returns only the query candidates the consistent-hash map
//! ([`rkranks_graph::ShardMap`]) assigns to it. Replicating the edges
//! costs memory but buys exactness — every owned candidate's rank is
//! computed against the whole graph, so per-shard answers are exact over
//! disjoint candidate slices and the coordinator's merge (concatenate,
//! sort by `(rank, node)`, truncate to `k`) reproduces the single-box
//! answer rank-for-rank. What sharding scales is the expensive part of a
//! reverse k-ranks query: the per-candidate bounded Dijkstra refinements,
//! divided `n` ways.
//!
//! ## Consistency
//!
//! * **Handshake** — each shard connection opens with a `hello`
//!   exchange; the coordinator verifies the protocol version, that the
//!   daemon's shard identity (index/count/seed) matches its slot in the
//!   `--shards` list, and that the whole fleet shares one partition seed.
//! * **Writes** — `update` batches broadcast to every shard behind a
//!   write gate (readers share it, writers exclude them) and are
//!   *flushed immediately*, so every accepted write commits on every
//!   shard before the next query round observes it and shard graph
//!   epochs advance in lockstep. A shard that fails mid-broadcast makes
//!   the reply a loud error naming it: the fleet must be assumed
//!   non-uniform until that shard is restored.
//! * **Reads** — replies carry the graph epoch they were computed at;
//!   the coordinator refuses to merge across epochs, flushing lagging
//!   shards and re-asking them (bounded) instead.
//! * **Failures** — a shard that stays unreachable after a reconnect is
//!   dropped from single-query merges and the answer is flagged
//!   `partial` (every returned rank still exact); batches, which have no
//!   partial channel on the wire, fail loudly instead.
//!
//! The coordinator serves `stats`/`metrics` from its own registry
//! (`rkrd_coord_*`: per-shard latency histograms, fan-out width, prune
//! rate, shard error counters), answers `hello` with role `"coord"`, and
//! forwards `flush`/`checkpoint` to the whole fleet. `shutdown` stops
//! the coordinator only — shards are independent daemons with their own
//! lifecycles.
//!
//! ## Loopback quickstart
//!
//! ```no_run
//! use rkranks_coord::{spawn_coord, CoordConfig};
//! use rkranks_server::Client;
//!
//! let config = CoordConfig::new(vec![
//!     "127.0.0.1:7001".into(), // shard 0 of 2
//!     "127.0.0.1:7002".into(), // shard 1 of 2
//! ]);
//! let handle = spawn_coord("127.0.0.1:0", config).unwrap();
//! let mut client = Client::connect(handle.addr()).unwrap();
//! let reply = client.query(0, 5).unwrap(); // rank-identical to single-box
//! # drop(reply);
//! client.shutdown().unwrap();
//! handle.join();
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod metrics;
pub mod pool;

use std::io;
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

use rkranks_server::conn::{Conn, Fill, LineStatus};
use rkranks_server::{ConnectPolicy, HelloReply, Reply, Request, StatsReply, PROTOCOL_VERSION};

pub use metrics::CoordMetrics;
pub use pool::ShardPool;

/// Coordinator configuration.
#[derive(Clone, Debug)]
pub struct CoordConfig {
    /// Shard addresses in shard-id order (`--shards A,B,C` means A is
    /// shard 0 of 3). Must be non-empty and must name every shard of
    /// the fleet exactly once — the handshake enforces it.
    pub shards: Vec<String>,
    /// How shard connections are (re)established.
    pub connect: ConnectPolicy,
    /// How long one shard reply may take before the shard counts as
    /// dead for this fan-out (and the connection is redialed next time).
    pub shard_reply_timeout: Duration,
    /// Frontside request-line cap, mirroring the shard daemon's.
    pub max_line_bytes: usize,
}

impl CoordConfig {
    /// A config for the given fleet with defaults: three connect
    /// attempts with backoff, a 30 s reply timeout, 1 MiB lines.
    pub fn new(shards: Vec<String>) -> CoordConfig {
        CoordConfig {
            shards,
            connect: ConnectPolicy::retrying(3),
            shard_reply_timeout: Duration::from_secs(30),
            max_line_bytes: 1024 * 1024,
        }
    }
}

/// State shared between the accept loop and every connection handler.
struct CoordShared {
    config: CoordConfig,
    metrics: Arc<CoordMetrics>,
    /// The write gate: queries and batches hold it shared, update /
    /// flush / checkpoint broadcasts hold it exclusively. With all
    /// writes routed through the coordinator this keeps shard graph
    /// epochs aligned outside a write window, so the epoch-retry loop
    /// in [`ShardPool::scatter_query`] is a fallback, not the norm.
    write_gate: RwLock<()>,
    shutdown: AtomicBool,
}

/// A running coordinator's handle: its bound address and the accept
/// thread to join after a client sends `shutdown`.
pub struct CoordHandle {
    addr: std::net::SocketAddr,
    thread: std::thread::JoinHandle<()>,
    shared: Arc<CoordShared>,
}

impl CoordHandle {
    /// The address the coordinator is listening on.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The coordinator's telemetry (live handles, not a snapshot).
    pub fn metrics(&self) -> Arc<CoordMetrics> {
        Arc::clone(&self.shared.metrics)
    }

    /// Ask the coordinator to stop without a protocol `shutdown` (used
    /// by tests and signal handlers); pair with [`CoordHandle::join`].
    pub fn stop(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Wait for the accept loop (and every handler it spawned) to exit.
    pub fn join(self) {
        let _ = self.thread.join();
    }
}

/// Bind `addr` and run the coordinator on a background thread.
pub fn spawn_coord(addr: impl ToSocketAddrs, config: CoordConfig) -> io::Result<CoordHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let shared = Arc::new(new_shared(config)?);
    let accept_shared = Arc::clone(&shared);
    let thread = std::thread::Builder::new()
        .name("coord-accept".into())
        .spawn(move || accept_loop(listener, accept_shared))?;
    Ok(CoordHandle {
        addr: local,
        thread,
        shared,
    })
}

/// Run the coordinator on the calling thread until a client sends
/// `shutdown`. The CLI path (`rkr coord`).
pub fn serve_coord(listener: TcpListener, config: CoordConfig) -> io::Result<()> {
    let shared = Arc::new(new_shared(config)?);
    accept_loop(listener, shared);
    Ok(())
}

fn new_shared(config: CoordConfig) -> io::Result<CoordShared> {
    if config.shards.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "a coordinator needs at least one shard address",
        ));
    }
    let metrics = Arc::new(CoordMetrics::new(config.shards.len()));
    Ok(CoordShared {
        config,
        metrics,
        write_gate: RwLock::new(()),
        shutdown: AtomicBool::new(false),
    })
}

/// How often parked loops (accept, idle connections) re-check the
/// shutdown flag.
const POLL_TICK: Duration = Duration::from_millis(25);

fn accept_loop(listener: TcpListener, shared: Arc<CoordShared>) {
    listener
        .set_nonblocking(true)
        .expect("cannot make the listener non-blocking");
    let mut handlers = Vec::new();
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let conn_shared = Arc::clone(&shared);
                if let Ok(h) = std::thread::Builder::new()
                    .name("coord-conn".into())
                    .spawn(move || handle_conn(stream, conn_shared))
                {
                    handlers.push(h);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(POLL_TICK),
            Err(_) => std::thread::sleep(POLL_TICK),
        }
        handlers.retain(|h| !h.is_finished());
    }
    for h in handlers {
        let _ = h.join();
    }
}

/// Serve one frontside connection: a blocking stream with a short read
/// timeout driven through the shard daemon's own [`Conn`] framing layer
/// (in-place line extraction, bounded lines, buffered writes), so the
/// coordinator and the shards reject oversize input and frame replies
/// identically.
fn handle_conn(stream: TcpStream, shared: Arc<CoordShared>) {
    let max_line = shared.config.max_line_bytes;
    if stream.set_read_timeout(Some(POLL_TICK)).is_err() || stream.set_nodelay(true).is_err() {
        return;
    }
    shared.metrics.connections_open.add(1);
    let mut conn = Conn::new(stream);
    let mut pool = ShardPool::new(&shared.config, Arc::clone(&shared.metrics));
    'serve: loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        // A timed-out blocking read surfaces as `WouldBlock` on Unix
        // (which `fill` absorbs) but as `TimedOut` on some platforms —
        // both mean "nothing arrived this tick", not a dead peer.
        let fill = match conn.fill(max_line) {
            Ok(f) => f,
            Err(e) if e.kind() == io::ErrorKind::TimedOut => Fill::Idle,
            Err(_) => break,
        };
        loop {
            let parsed = match conn.peek_line(max_line) {
                LineStatus::Partial => break,
                LineStatus::Oversize => {
                    let _ = send_reply(
                        &mut conn,
                        &Reply::Error(format!("bad request: line exceeds {max_line} bytes")),
                    );
                    break 'serve;
                }
                LineStatus::Line(bytes) => {
                    let text = String::from_utf8_lossy(bytes);
                    let text = text.trim();
                    if text.is_empty() {
                        None
                    } else {
                        Some(Request::from_line(text).map_err(|m| format!("bad request: {m}")))
                    }
                }
            };
            conn.consume_line();
            let Some(result) = parsed else { continue };
            let reply = match result {
                Ok(Request::Shutdown) => {
                    shared.shutdown.store(true, Ordering::SeqCst);
                    let mut line = Reply::Shutdown.to_json().render();
                    line.push('\n');
                    conn.send_final(line.as_bytes());
                    break 'serve;
                }
                Ok(req) => execute(&shared, &mut pool, req),
                Err(msg) => Reply::Error(msg),
            };
            if send_reply(&mut conn, &reply).is_err() {
                break 'serve;
            }
        }
        conn.compact();
        if conn.try_flush().is_err() || fill == Fill::Eof {
            break;
        }
    }
    shared.metrics.connections_open.sub(1);
}

fn send_reply(conn: &mut Conn, reply: &Reply) -> io::Result<()> {
    let mut line = reply.to_json().render();
    line.push('\n');
    conn.send(line.as_bytes())
}

/// Serve one parsed request against the fleet.
fn execute(shared: &CoordShared, pool: &mut ShardPool, req: Request) -> Reply {
    let m = &shared.metrics;
    match req {
        Request::Query {
            node,
            k,
            cache,
            strategy,
            deadline_ms,
        } => {
            let _read = shared.write_gate.read().expect("write gate poisoned");
            m.queries.inc();
            pool.scatter_query(node, k, cache, strategy, deadline_ms)
        }
        Request::Batch { nodes, k } => {
            let _read = shared.write_gate.read().expect("write gate poisoned");
            m.batches.inc();
            pool.scatter_batch(&nodes, k)
        }
        Request::Update { ops } => {
            let _write = shared.write_gate.write().expect("write gate poisoned");
            m.updates.inc();
            // The merged reply mirrors the single-box shape: staged
            // count and the pre-commit graph epoch. Deterministic
            // validation against identical replicated graphs means the
            // per-shard replies agree; max() is belt and braces.
            let (staged, graph_epoch) = match pool.broadcast(&Request::Update { ops }) {
                Ok(replies) => replies
                    .iter()
                    .filter_map(|r| match r {
                        Reply::Update {
                            staged,
                            graph_epoch,
                        } => Some((*staged, *graph_epoch)),
                        _ => None,
                    })
                    .max()
                    .unwrap_or((0, 0)),
                Err(e) => {
                    return Reply::Error(format!(
                        "update did not reach the whole fleet ({e}); the fleet may be \
                         non-uniform — restore the failed shard(s) before writing again"
                    ))
                }
            };
            // Commit immediately on every shard: staged writes that
            // lingered would commit on each shard's own merge cadence
            // and let graph epochs drift apart.
            match pool.broadcast(&Request::Flush) {
                Ok(_) => {
                    // The coupled flush committed the staged batch, so the
                    // fleet now serves the next epoch.
                    m.graph_epoch.set(graph_epoch + 1);
                }
                Err(e) => {
                    return Reply::Error(format!(
                        "update staged everywhere but the commit flush failed ({e}); \
                         restore the failed shard(s) — the next query round will \
                         re-flush the laggards"
                    ))
                }
            }
            Reply::Update {
                staged,
                graph_epoch,
            }
        }
        Request::Flush => {
            let _write = shared.write_gate.write().expect("write gate poisoned");
            match pool.broadcast(&Request::Flush) {
                Ok(replies) => {
                    let (mut epoch, mut merged) = (0, 0);
                    for r in &replies {
                        if let Reply::Flush {
                            epoch: e,
                            merged: d,
                        } = r
                        {
                            epoch = epoch.max(*e);
                            merged += d;
                        }
                    }
                    Reply::Flush { epoch, merged }
                }
                Err(e) => Reply::Error(e),
            }
        }
        Request::Checkpoint => {
            let _write = shared.write_gate.write().expect("write gate poisoned");
            match pool.broadcast(&Request::Checkpoint) {
                Ok(replies) => replies
                    .into_iter()
                    .find(|r| matches!(r, Reply::Checkpoint { .. }))
                    .unwrap_or(Reply::Error("empty checkpoint fan-out".into())),
                Err(e) => Reply::Error(e),
            }
        }
        Request::Stats => Reply::Stats(stats_snapshot(shared)),
        Request::Metrics => Reply::Metrics(m.registry.snapshot()),
        // The coordinator computes nothing itself; its slow-query story
        // is the per-shard rings (`rkr ctl SHARD slow-queries`).
        Request::SlowQueries => Reply::SlowQueries(Vec::new()),
        Request::Hello => Reply::Hello(HelloReply {
            v: PROTOCOL_VERSION,
            role: "coord".into(),
            shard: None,
            epoch: 0,
            graph_epoch: m.graph_epoch.get(),
            nodes: m.graph_nodes.get(),
            edges: m.graph_edges.get(),
        }),
        // Handled by the connection loop before execute.
        Request::Shutdown => Reply::Shutdown,
    }
}

/// The coordinator's `stats` view: fan-out counters where they map onto
/// the shared reply shape, zeros where a field is shard-only (cache,
/// merger, event-loop internals — read those per shard).
fn stats_snapshot(shared: &CoordShared) -> StatsReply {
    let m = &shared.metrics;
    StatsReply {
        v: PROTOCOL_VERSION,
        queries: m.queries.get(),
        partial_results: m.partials.get(),
        graph_epoch: m.graph_epoch.get(),
        graph_nodes: m.graph_nodes.get(),
        graph_edges: m.graph_edges.get(),
        workers: m.connections_open.get(),
        batches: m.batches.get(),
        updates_applied: m.updates.get(),
        ..StatsReply::default()
    }
}
