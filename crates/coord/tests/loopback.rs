//! Scatter-gather loopback integration: a coordinator fronting N
//! in-process `rkrd` shards must serve answers rank-identical to the
//! single-box dynamic search, across the same cache/merge-cadence matrix
//! the single-daemon loopback suite runs — including live graph updates
//! routed through the coordinator mid-traffic — and must degrade to
//! *sound* partial answers (never hangs, never wrong ranks) when a shard
//! is killed.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::SeedableRng;
use rkranks_coord::{spawn_coord, CoordConfig};
use rkranks_core::{BoundConfig, EngineContext, QueryRequest, RkrIndex};
use rkranks_datasets::workload::default_update_stream;
use rkranks_datasets::zipf::Zipf;
use rkranks_datasets::{collab_graph, CollabParams};
use rkranks_graph::{Graph, GraphStore, ShardMap};
use rkranks_server::{spawn, Client, ServerConfig, ServerHandle, UpdateOp};

const K: u32 = 5;
const K_MAX: u32 = 16;
const SHARDS: u32 = 3;
const SHARD_SEED: u64 = 0x5EED;
const CLIENTS: usize = 4;
const QUERIES_PER_CLIENT: usize = 40;

fn test_graph() -> Graph {
    collab_graph(&CollabParams::with_authors(150, 0xC0FFEE))
}

fn zipf_workload(n: u32, count: usize, seed: u64) -> Vec<u32> {
    let z = Zipf::new(n as usize, 1.2);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| (z.sample(&mut rng) - 1) as u32)
        .collect()
}

/// Ground truth: per-node ranks from the plain single-box dynamic search.
fn expected_ranks(g: &Graph) -> BTreeMap<u32, Vec<u32>> {
    let ctx = EngineContext::new(g);
    let mut scratch = ctx.new_scratch();
    g.nodes()
        .map(|q| {
            let r = ctx
                .execute(&mut scratch, &QueryRequest::new(q, K))
                .unwrap()
                .result;
            (q.0, r.ranks())
        })
        .collect()
}

/// Spawn the whole fleet: `SHARDS` shard daemons over replicas of `g`,
/// each owning its consistent-hash slice.
fn spawn_fleet(g: &Graph, cache_capacity: usize, merge_every: u64) -> Vec<ServerHandle> {
    let map = ShardMap::new(SHARDS, SHARD_SEED);
    (0..SHARDS)
        .map(|i| {
            spawn(
                g.clone(),
                None,
                RkrIndex::empty(g.num_nodes(), K_MAX),
                "127.0.0.1:0",
                ServerConfig {
                    workers: 2,
                    cache_capacity,
                    merge_every,
                    bounds: BoundConfig::ALL,
                    shard: Some(map.slice(i)),
                    ..Default::default()
                },
            )
            .expect("bind shard")
        })
        .collect()
}

fn shard_addrs(fleet: &[ServerHandle]) -> Vec<String> {
    fleet.iter().map(|h| h.addr().to_string()).collect()
}

/// The tentpole acceptance test: 4 concurrent Zipf clients against the
/// coordinator, across cache on/off × merge cadences, every answer
/// rank-identical to single-box `query_dynamic`.
#[test]
fn scatter_gather_matches_single_box_across_zipf_matrix() {
    let g = test_graph();
    let n = g.num_nodes();
    let expected = expected_ranks(&g);

    for (cache_capacity, merge_every) in [(0, 1), (0, 16), (1024, 1), (1024, 16)] {
        let fleet = spawn_fleet(&g, cache_capacity, merge_every);
        let coord = spawn_coord("127.0.0.1:0", CoordConfig::new(shard_addrs(&fleet)))
            .expect("bind coordinator");
        let addr = coord.addr();

        std::thread::scope(|s| {
            for client_id in 0..CLIENTS {
                let expected = &expected;
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let workload = zipf_workload(n, QUERIES_PER_CLIENT, 0xBEEF ^ client_id as u64);
                    for (i, node) in workload.into_iter().enumerate() {
                        let reply = client.query(node, K).expect("query");
                        assert!(!reply.partial, "healthy fleet must answer complete");
                        let got: Vec<u32> = reply.entries.iter().map(|&(_, r)| r).collect();
                        assert_eq!(
                            &got, &expected[&node],
                            "cache={cache_capacity} merge_every={merge_every} \
                             client={client_id} i={i} node={node}: ranks diverged"
                        );
                    }
                });
            }
        });

        // The coordinator's own telemetry must show the fan-out working:
        // full-width fan-outs, per-shard latency, and a positive prune
        // rate (shards returned more candidates than survived the merge).
        let m = coord.metrics();
        let total = (CLIENTS * QUERIES_PER_CLIENT) as u64;
        assert_eq!(m.queries.get(), total);
        assert!(m.fanouts.get() >= total);
        for i in 0..SHARDS as usize {
            assert!(
                m.shard_seconds[i].count() >= total,
                "shard {i} latency histogram must record every fan-out"
            );
            assert_eq!(m.shard_errors[i].get(), 0);
        }
        let received = m.candidates_received.get();
        let returned = m.candidates_returned.get();
        assert!(
            received > returned,
            "the merge must prune (got {received} -> {returned})"
        );
        assert_eq!(m.partials.get(), 0);

        let ctl = Client::connect(addr).expect("connect ctl");
        ctl.shutdown().expect("coordinator shutdown");
        coord.join();
        for shard in fleet {
            let c = Client::connect(shard.addr()).expect("connect shard");
            c.shutdown().expect("shard shutdown");
            shard.join();
        }
    }
}

/// Live GraphDelta batches routed through the coordinator mid-traffic:
/// each phase's update batch commits on every shard before the reply
/// returns, and every subsequent query is rank-identical to an offline
/// replay of the same stream.
#[test]
fn live_updates_through_the_coordinator_stay_rank_identical() {
    const PHASE_OPS: usize = 8;
    const PHASES: usize = 3;

    let g = test_graph();
    let stream = default_update_stream(&g, PHASE_OPS * PHASES, 0xFEED);
    let mut store = GraphStore::new(g.clone());
    let mut expected = vec![expected_ranks(&g)];
    for batch in stream.chunks(PHASE_OPS) {
        let snap = store.apply(batch).expect("valid stream");
        expected.push(expected_ranks(&snap));
    }

    // merge_every=0: shards commit only on the coordinator's flushes, so
    // the write path under test is the coordinator's update+flush gate.
    let fleet = spawn_fleet(&g, 1024, 0);
    let coord =
        spawn_coord("127.0.0.1:0", CoordConfig::new(shard_addrs(&fleet))).expect("bind coord");
    let addr = coord.addr();
    let mut ctl = Client::connect(addr).expect("connect ctl");

    for (phase, batch) in std::iter::once(None)
        .chain(stream.chunks(PHASE_OPS).map(Some))
        .enumerate()
    {
        if let Some(batch) = batch {
            let ops: Vec<UpdateOp> = batch.iter().map(|&d| d.into()).collect();
            let (staged, pre_epoch) = ctl.update(&ops).expect("update through coordinator");
            assert_eq!(staged, ops.len() as u64);
            assert_eq!(pre_epoch, phase as u64 - 1, "staging reports the old epoch");
        }
        let n_phase = expected[phase].len() as u32;
        std::thread::scope(|s| {
            for client_id in 0..CLIENTS {
                let expected = &expected[phase];
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let workload = zipf_workload(n_phase, 20, 0xFADE ^ client_id as u64);
                    for node in workload {
                        let reply = client.query(node, K).expect("query");
                        assert!(!reply.partial);
                        assert_eq!(
                            reply.graph_epoch, phase as u64,
                            "coordinator writes commit before the reply returns"
                        );
                        let got: Vec<u32> = reply.entries.iter().map(|&(_, r)| r).collect();
                        assert_eq!(
                            &got, &expected[&node],
                            "phase {phase} node {node}: sharded serving diverged from replay"
                        );
                    }
                });
            }
        });
    }

    ctl.shutdown().expect("coordinator shutdown");
    coord.join();
    for shard in fleet {
        let outcome = {
            let c = Client::connect(shard.addr()).expect("connect shard");
            c.shutdown().expect("shard shutdown");
            shard.join()
        };
        assert_eq!(outcome.graph_epoch, PHASES as u64);
        assert_eq!(*outcome.graph, *store.snapshot(), "shard == replay graph");
    }
}

/// Kill one shard: single queries must come back quickly, flagged
/// partial, with every returned rank still exact and every returned node
/// owned by a surviving shard; batches must fail loudly (no partial
/// channel on the wire); nothing hangs.
#[test]
fn killed_shard_degrades_to_sound_partial_answers() {
    let g = test_graph();
    let map = ShardMap::new(SHARDS, SHARD_SEED);

    // What the merge over only the surviving shards must produce: each
    // survivor's exact top-k over its owned slice, merged the same
    // deterministic way the coordinator merges ((rank, node) sort,
    // truncate k).
    let expected_partial = |node: u32, survivors: &[u32]| -> Vec<(u32, u32)> {
        let mut entries: Vec<(u32, u32)> = Vec::new();
        for &s in survivors {
            let ctx = EngineContext::new(g.clone()).with_shard_slice(map.slice(s));
            let mut scratch = ctx.new_scratch();
            let r = ctx
                .execute(
                    &mut scratch,
                    &QueryRequest::new(rkranks_graph::NodeId(node), K),
                )
                .unwrap()
                .result;
            entries.extend(r.entries.iter().map(|e| (e.node.0, e.rank)));
        }
        entries.sort_by_key(|&(n, r)| (r, n));
        entries.truncate(K as usize);
        entries
    };

    let fleet = spawn_fleet(&g, 0, 1);
    let coord =
        spawn_coord("127.0.0.1:0", CoordConfig::new(shard_addrs(&fleet))).expect("bind coord");
    let mut client = Client::connect(coord.addr()).expect("connect");

    // Warm the pool so the kill severs live connections (the harder path:
    // a mid-flight transport error, then a refused reconnect).
    let healthy = client.query(0, K).expect("healthy query");
    assert!(!healthy.partial);

    const DEAD: u32 = 1;
    let mut fleet = fleet;
    let dead = fleet.remove(DEAD as usize);
    {
        let c = Client::connect(dead.addr()).expect("connect doomed shard");
        c.shutdown().expect("shard shutdown");
    }
    dead.join();

    let started = std::time::Instant::now();
    for node in [3u32, 17, 42, 99] {
        let reply = client.query(node, K).expect("degraded query still answers");
        assert!(
            reply.partial,
            "a missing shard must flag the answer partial"
        );
        for &(cand, _) in &reply.entries {
            assert_ne!(
                map.shard_of(rkranks_graph::NodeId(cand)),
                DEAD,
                "node {node}: entry {cand} is owned by the dead shard"
            );
        }
        assert_eq!(
            reply.entries,
            expected_partial(node, &[0, 2]),
            "node {node}: the partial answer must be the exact merge over the \
             surviving shards"
        );
    }
    assert!(
        started.elapsed() < std::time::Duration::from_secs(30),
        "degraded queries must fail fast, not hang"
    );

    let batch_err = client.batch(&[1, 2, 3], K);
    assert!(
        batch_err.is_err(),
        "batches have no partial channel and must fail loudly"
    );

    let m = coord.metrics();
    assert!(m.partials.get() >= 4);
    assert!(
        m.shard_errors[DEAD as usize].get() > 0,
        "the dead shard's error counter must move"
    );
    assert_eq!(m.shard_errors[0].get(), 0);

    drop(client);
    let ctl = Client::connect(coord.addr()).expect("connect ctl");
    ctl.shutdown().expect("coordinator shutdown");
    coord.join();
    for shard in fleet {
        let c = Client::connect(shard.addr()).expect("connect shard");
        c.shutdown().expect("shard shutdown");
        shard.join();
    }
}

/// The handshake layer: `hello` against the coordinator identifies it as
/// role `"coord"` speaking the current protocol version, and a fleet
/// whose address list disagrees with the shards' own identities is
/// refused with a one-line error instead of serving wrong merges.
#[test]
fn handshake_verifies_roles_and_misordered_fleets_are_refused() {
    let g = test_graph();
    let fleet = spawn_fleet(&g, 0, 1);

    // Correct order: hello says coord, and a query works.
    let coord =
        spawn_coord("127.0.0.1:0", CoordConfig::new(shard_addrs(&fleet))).expect("bind coord");
    let mut client = Client::connect(coord.addr()).expect("connect");
    let hello = client.hello().expect("hello");
    assert_eq!(hello.role, "coord");
    assert_eq!(hello.v, rkranks_server::PROTOCOL_VERSION);
    assert!(hello.shard.is_none());
    client.query(5, K).expect("query through verified fleet");

    // A shard answers hello with its identity.
    let mut direct = Client::connect(fleet[2].addr()).expect("connect shard");
    let shard_hello = direct.hello().expect("shard hello");
    assert_eq!(shard_hello.role, "shard");
    let id = shard_hello.shard.expect("shard identity");
    assert_eq!((id.index, id.shards, id.seed), (2, SHARDS, SHARD_SEED));

    // Swapped addresses: the handshake must catch the miswiring on the
    // first fan-out and refuse to serve.
    let mut swapped = shard_addrs(&fleet);
    swapped.swap(0, 1);
    let bad = spawn_coord("127.0.0.1:0", CoordConfig::new(swapped)).expect("bind bad coord");
    let mut bad_client = Client::connect(bad.addr()).expect("connect");
    let err = bad_client.query(5, K);
    match err {
        Err(rkranks_server::ClientError::Server(msg)) => {
            assert!(
                msg.contains("identifies as shard"),
                "miswiring error must name the identity mismatch, got: {msg}"
            );
        }
        other => panic!("misordered fleet must be refused, got {other:?}"),
    }

    let ctl = Client::connect(coord.addr()).expect("ctl");
    ctl.shutdown().expect("shutdown coord");
    coord.join();
    bad.stop();
    bad.join();
    for shard in fleet {
        let c = Client::connect(shard.addr()).expect("connect shard");
        c.shutdown().expect("shard shutdown");
        shard.join();
    }
}
