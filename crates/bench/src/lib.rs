//! Shared fixtures for the Criterion benches.
//!
//! Bench graphs are ~1200 nodes: large enough that pruning behaviour is
//! realistic (thousands of candidate nodes, heavy-tailed degrees), small
//! enough that `cargo bench --workspace` finishes in minutes. Each fixture
//! is built once per process and reused by every benchmark in the target.

use std::sync::OnceLock;

use rkranks_datasets::{
    collab_graph, road_network, trust_graph, trust_graph_undirected, CollabParams, RoadNetwork,
    RoadParams, TrustParams,
};
use rkranks_graph::{Graph, NodeId};

/// Seed used by every bench fixture (reproducible runs).
pub const BENCH_SEED: u64 = 42;

/// DBLP-like collaboration graph (undirected, ~1200 nodes, avg degree ≈ 14).
pub fn dblp() -> &'static Graph {
    static G: OnceLock<Graph> = OnceLock::new();
    G.get_or_init(|| collab_graph(&CollabParams::with_authors(1200, BENCH_SEED)))
}

/// Epinions-like trust graph (directed, ~1200 nodes).
pub fn epinions() -> &'static Graph {
    static G: OnceLock<Graph> = OnceLock::new();
    G.get_or_init(|| trust_graph(&TrustParams::with_users(1200, BENCH_SEED)))
}

/// Undirected Epinions-like graph (bound-analysis benches need the count
/// bound, which is undirected-only).
pub fn epinions_undirected() -> &'static Graph {
    static G: OnceLock<Graph> = OnceLock::new();
    G.get_or_init(|| trust_graph_undirected(&TrustParams::with_users(1200, BENCH_SEED)))
}

/// Road network with stores (undirected, 1200 nodes, 40 stores).
pub fn road() -> &'static RoadNetwork {
    static G: OnceLock<RoadNetwork> = OnceLock::new();
    G.get_or_init(|| road_network(&RoadParams::grid(40, 30, 40, BENCH_SEED)))
}

/// A deterministic rotation of query nodes for a bench loop.
pub fn bench_queries(graph: &Graph, count: usize, valid: impl Fn(NodeId) -> bool) -> Vec<NodeId> {
    rkranks_eval::workload::random_queries(graph, count, BENCH_SEED ^ 0xBE7C, valid)
}

/// Round-robin cursor over a query set.
pub struct QueryCursor {
    queries: Vec<NodeId>,
    next: usize,
}

impl QueryCursor {
    /// Wrap a non-empty query list.
    pub fn new(queries: Vec<NodeId>) -> Self {
        assert!(!queries.is_empty());
        QueryCursor { queries, next: 0 }
    }

    /// The next query node, cycling.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> NodeId {
        let q = self.queries[self.next];
        self.next = (self.next + 1) % self.queries.len();
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build_and_cache() {
        assert_eq!(dblp().num_nodes(), 1200);
        assert!(epinions().is_directed());
        assert!(!epinions_undirected().is_directed());
        assert_eq!(road().stores.len(), 40);
        // same instance on second call
        assert!(std::ptr::eq(dblp(), dblp()));
    }

    #[test]
    fn cursor_cycles() {
        let mut c = QueryCursor::new(vec![NodeId(1), NodeId(2)]);
        assert_eq!(c.next(), NodeId(1));
        assert_eq!(c.next(), NodeId(2));
        assert_eq!(c.next(), NodeId(1));
    }
}
