//! Serving-layer costs: the LRU result cache in isolation, and the full
//! `rkrd` loopback round-trip for a cache hit vs an uncached query.
//!
//! The hit/uncached gap is the value the cache adds per repeated query
//! *including* the protocol round-trip — on a warmed daemon a hit skips
//! the whole SDS-tree search, so the remaining cost is TCP + JSON, which
//! is also (roughly) the floor any transport-level optimization competes
//! against.

use std::hint::black_box;
use std::net::TcpStream;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rkranks_bench::{bench_queries, dblp};
use rkranks_core::RkrIndex;
use rkranks_server::{spawn, CacheKey, Client, EventBackend, ResultCache, ServerConfig};

const K: u32 = 10;

/// Both event-loop backends the host can run.
fn backends() -> Vec<EventBackend> {
    let mut all = vec![EventBackend::Poll];
    if EventBackend::epoll_supported() {
        all.push(EventBackend::Epoll);
    }
    all
}

fn cache_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("serving/cache");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));

    let key = |node: u32, epoch: u64| CacheKey {
        node,
        k: K,
        strategy: 3,
        epoch,
        graph_epoch: 0,
    };
    let value: Vec<(u32, u32)> = (0..K).map(|i| (i, i + 1)).collect();

    // steady-state insert into a full cache (every insert evicts)
    group.bench_function("insert_evicting", |b| {
        let mut cache = ResultCache::new(1024);
        for n in 0..1024 {
            cache.insert(key(n, 0), value.clone());
        }
        let mut n = 1024u32;
        b.iter(|| {
            n = n.wrapping_add(1);
            cache.insert(key(n, 0), value.clone());
        });
    });

    group.bench_function("hit", |b| {
        let mut cache = ResultCache::new(1024);
        for n in 0..1024 {
            cache.insert(key(n, 0), value.clone());
        }
        let mut n = 0u32;
        b.iter(|| {
            n = (n + 1) % 1024;
            black_box(cache.get(&key(n, 0)).is_some());
        });
    });

    group.bench_function("purge_stale_1024", |b| {
        b.iter(|| {
            let mut cache = ResultCache::new(1024);
            for n in 0..1024 {
                cache.insert(key(n, 0), value.clone());
            }
            black_box(cache.purge_stale(0, 1));
        });
    });
    group.finish();
}

fn loopback_round_trip(c: &mut Criterion) {
    let g = dblp().clone();
    let queries = bench_queries(&g, 64, |_| true);
    let handle = spawn(
        g,
        None,
        RkrIndex::empty(dblp().num_nodes(), 100),
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            cache_capacity: 4096,
            merge_every: 0, // no cadence merges: keep the epoch stable
            ..Default::default()
        },
    )
    .expect("bind loopback");
    let mut client = Client::connect(handle.addr()).expect("connect");

    // warm every query so the "hit" bench measures pure cache + transport
    for q in &queries {
        client.query(q.0, K).expect("warm-up query");
    }

    let mut group = c.benchmark_group("serving/loopback");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let mut i = 0;
    group.bench_function("cache_hit", |b| {
        b.iter(|| {
            i = (i + 1) % queries.len();
            black_box(client.query(queries[i].0, K).expect("hit query"));
        })
    });
    let mut j = 0;
    group.bench_function("uncached", |b| {
        b.iter(|| {
            j = (j + 1) % queries.len();
            black_box(client.query_uncached(queries[j].0, K).expect("uncached"));
        })
    });
    group.finish();

    client.shutdown().expect("shutdown");
    handle.join();
}

/// The connection-count sweep: per-request latency with a crowd of
/// parked, idle keep-alive connections. On the epoll backend the cost of
/// a round-trip must not grow with the parked count (O(ready) wake-ups);
/// the poll backend's O(open) scan is the contrast. `examples/
/// serving_sweep.rs` runs the same sweep up to 10k connections and
/// records `BENCH_serving.json`; this bench keeps the small end of the
/// curve under criterion's eye.
fn parked_connection_sweep(c: &mut Criterion) {
    let n = dblp().num_nodes();
    let queries = bench_queries(dblp(), 64, |_| true);

    let mut group = c.benchmark_group("serving/parked");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(1));
    for backend in backends() {
        for parked in [16usize, 256, 2048] {
            let handle = spawn(
                dblp().clone(),
                None,
                RkrIndex::empty(n, 100),
                "127.0.0.1:0",
                ServerConfig {
                    workers: 2,
                    cache_capacity: 4096,
                    merge_every: 0,
                    event_loop: backend,
                    ..Default::default()
                },
            )
            .expect("bind loopback");
            let addr = handle.addr();
            let idle: Vec<TcpStream> = (0..parked)
                .map(|_| TcpStream::connect(addr).expect("park conn"))
                .collect();
            let mut client = Client::connect(addr).expect("connect");
            for q in &queries {
                client.query(q.0, K).expect("warm-up query");
            }

            let mut i = 0;
            group.bench_function(
                BenchmarkId::new(format!("query_hit/{backend}"), parked),
                |b| {
                    b.iter(|| {
                        i = (i + 1) % queries.len();
                        black_box(client.query(queries[i].0, K).expect("hit query"));
                    })
                },
            );
            group.bench_function(BenchmarkId::new(format!("stats/{backend}"), parked), |b| {
                b.iter(|| black_box(client.stats().expect("stats")))
            });

            drop(idle);
            client.shutdown().expect("shutdown");
            handle.join();
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    cache_ops,
    loopback_round_trip,
    parked_connection_sweep
);
criterion_main!(benches);
