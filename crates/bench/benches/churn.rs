//! Churn benchmarks: what live graph updates cost.
//!
//! Three questions, three groups:
//!
//! * `churn/apply` — update-apply latency: staging a batch of deltas and
//!   committing it into a fresh CSR snapshot, at several batch sizes.
//!   The rebuild is `O(m log m)` per *commit*, not per delta — larger
//!   batches amortize it, which is the `GraphStore` design bet.
//! * `churn/stage` — validation-only cost of staging one delta (the
//!   protocol-boundary price every `update` op pays).
//! * `churn/serving` — query throughput under mixed read/write ratios
//!   {static, 100:1, 10:1}: each sample runs a fixed read budget and
//!   folds one staged update + commit + context rebuild in per `R`
//!   reads, the way the daemon's merger does — so the sample time prices
//!   snapshot publication and the retired-index cold start, not just the
//!   rebuild.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rkranks_bench::{bench_queries, dblp, BENCH_SEED};
use rkranks_core::{EngineContext, QueryRequest};
use rkranks_datasets::workload::default_update_stream;
use rkranks_graph::{Graph, GraphStore};

const K: u32 = 10;
const READS: usize = 64;

fn apply_latency(c: &mut Criterion) {
    let g: &Graph = dblp();
    let mut group = c.benchmark_group("churn/apply");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    for batch in [1usize, 16, 256] {
        // One long pre-generated stream applied chunk by chunk to one
        // long-lived store, so the timed closure measures exactly one
        // stage+commit cycle — not store construction. Chunks of a valid
        // stream stay valid when applied in order; when the stream runs
        // dry the store is rebuilt outside what the median sees.
        let stream = default_update_stream(g, batch * 512, BENCH_SEED);
        group.bench_with_input(BenchmarkId::new("batch", batch), &batch, |b, &batch| {
            let mut store = GraphStore::new(g.clone());
            let mut offset = 0usize;
            b.iter(|| {
                if offset + batch > stream.len() {
                    store = GraphStore::new(g.clone());
                    offset = 0;
                }
                let chunk = &stream[offset..offset + batch];
                offset += batch;
                black_box(store.apply(chunk).unwrap());
            });
        });
    }
    group.finish();
}

fn stage_validation(c: &mut Criterion) {
    let g: &Graph = dblp();
    let mut group = c.benchmark_group("churn/stage");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    // A long pre-generated stream staged one delta at a time (never
    // committed): pure boundary-validation cost.
    let stream = default_update_stream(g, 4096, BENCH_SEED ^ 0x57A6);
    group.bench_function("validate_one", |b| {
        let mut store = GraphStore::new(g.clone());
        let mut i = 0usize;
        b.iter(|| {
            if i == stream.len() {
                // drain and start over so validity holds
                store = GraphStore::new(g.clone());
                i = 0;
            }
            store.stage(black_box(stream[i])).unwrap();
            i += 1;
        });
    });
    group.finish();
}

fn mixed_serving(c: &mut Criterion) {
    let g: &Graph = dblp();
    let queries = bench_queries(g, READS, |_| true);

    let mut group = c.benchmark_group("churn/serving");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    // ratio 0 = static baseline: same read budget, no updates, context
    // built once outside the loop like a long-lived daemon.
    for ratio in [0usize, 100, 10] {
        let label = if ratio == 0 {
            "static".to_string()
        } else {
            format!("{ratio}:1")
        };
        let writes = if ratio == 0 { 0 } else { READS.div_ceil(ratio) };
        let stream = default_update_stream(g, writes.max(1), BENCH_SEED ^ 0xC0DE);
        group.bench_with_input(BenchmarkId::new("ratio", label), &ratio, |b, &ratio| {
            b.iter(|| {
                let mut store = GraphStore::new(g.clone());
                let mut ctx = EngineContext::new(store.snapshot());
                let mut scratch = ctx.new_scratch();
                let mut next_write = 0usize;
                for (i, &q) in queries.iter().enumerate() {
                    let out = ctx.execute(&mut scratch, &QueryRequest::new(q, K)).unwrap();
                    black_box(out.result.entries.len());
                    if ratio > 0 && (i + 1) % ratio == 0 && next_write < stream.len() {
                        // the merger's commit path: stage + commit +
                        // publish a fresh context for the new snapshot
                        store.stage(stream[next_write]).unwrap();
                        next_write += 1;
                        let snap = store.commit();
                        ctx = EngineContext::new(snap);
                        scratch = ctx.new_scratch();
                    }
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, apply_latency, stage_validation, mixed_serving);
criterion_main!(benches);
