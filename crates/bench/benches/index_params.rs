//! Tables 6–9: indexed-query cost as the hub fraction `h` and prefix
//! fraction `m` vary.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rkranks_bench::{bench_queries, dblp, QueryCursor};
use rkranks_core::{BoundConfig, IndexAccess, IndexParams, QueryEngine, QueryRequest, Strategy};

fn index_params(c: &mut Criterion) {
    let g = dblp();
    let queries = bench_queries(g, 64, |_| true);
    let mut group = c.benchmark_group("index_params/dblp_k10");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));

    // Tables 6–7: vary h at m = 0.1.
    for h in [0.03, 0.1, 0.15] {
        group.bench_with_input(
            BenchmarkId::new("hub_fraction", format!("{h}")),
            &h,
            |b, &h| {
                let engine_ro = QueryEngine::new(g);
                let params = IndexParams {
                    hub_fraction: h,
                    k_max: 100,
                    ..Default::default()
                };
                let (mut idx, _) = engine_ro.build_index(&params);
                let mut engine = QueryEngine::new(g);
                let mut cursor = QueryCursor::new(queries.clone());
                b.iter(|| {
                    let req = QueryRequest::new(cursor.next(), 10)
                        .with_strategy(Strategy::Indexed(BoundConfig::ALL));
                    black_box(
                        engine
                            .execute_with(Some(&mut IndexAccess::Live(&mut idx)), &req)
                            .unwrap(),
                    )
                });
            },
        );
    }
    // Tables 8–9: vary m at h = 0.1.
    for m in [0.03, 0.1, 0.15] {
        group.bench_with_input(
            BenchmarkId::new("prefix_fraction", format!("{m}")),
            &m,
            |b, &m| {
                let engine_ro = QueryEngine::new(g);
                let params = IndexParams {
                    prefix_fraction: m,
                    k_max: 100,
                    ..Default::default()
                };
                let (mut idx, _) = engine_ro.build_index(&params);
                let mut engine = QueryEngine::new(g);
                let mut cursor = QueryCursor::new(queries.clone());
                b.iter(|| {
                    let req = QueryRequest::new(cursor.next(), 10)
                        .with_strategy(Strategy::Indexed(BoundConfig::ALL));
                    black_box(
                        engine
                            .execute_with(Some(&mut IndexAccess::Live(&mut idx)), &req)
                            .unwrap(),
                    )
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, index_params);
criterion_main!(benches);
