//! Table 15: index construction cost across the h/m grid.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rkranks_bench::{dblp, epinions};
use rkranks_core::{IndexParams, QueryEngine};
use rkranks_graph::Graph;

fn bench_dataset(c: &mut Criterion, label: &str, g: &'static Graph) {
    let mut group = c.benchmark_group(format!("index_build/{label}"));
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for (h, m) in [
        (0.03, 0.1),
        (0.1, 0.1),
        (0.15, 0.1),
        (0.1, 0.03),
        (0.1, 0.15),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("h{h}_m{m}")),
            &(h, m),
            |b, &(h, m)| {
                let engine = QueryEngine::new(g);
                let params = IndexParams {
                    hub_fraction: h,
                    prefix_fraction: m,
                    k_max: 100,
                    ..Default::default()
                };
                b.iter(|| black_box(engine.build_index(&params)));
            },
        );
    }
    group.finish();
}

fn index_build(c: &mut Criterion) {
    bench_dataset(c, "dblp", dblp());
    bench_dataset(c, "epinions", epinions());
}

criterion_group!(benches, index_build);
criterion_main!(benches);
