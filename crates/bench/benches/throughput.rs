//! Serving throughput: queries/second vs worker-thread count.
//!
//! One shared `EngineContext` serves every worker; each sample runs a
//! fixed batch of queries, so sample time is inversely proportional to
//! throughput — compare the per-thread-count medians directly. Covered
//! modes: dynamic batches (embarrassingly parallel), indexed
//! sequential-dynamic (the paper's single-threaded stream, the 1-thread
//! baseline for the snapshot rows), and snapshot-indexed with per-epoch
//! delta merges at two cadences.

use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rkranks_bench::{bench_queries, dblp};
use rkranks_core::{BoundConfig, IndexParams, QueryEngine, Strategy};
use rkranks_eval::runner::{run_batch, run_indexed_batch, IndexedMode};

const K: u32 = 10;
const BATCH: usize = 64;
const THREADS: [usize; 3] = [1, 2, 4];

fn throughput(c: &mut Criterion) {
    let g = dblp();
    // One Arc for the whole target: b.iter closures clone the Arc, not
    // the CSR — the samples measure query work, not graph copies.
    let ga: Arc<rkranks_graph::Graph> = g.into();
    let g = &ga;
    let queries = bench_queries(g, BATCH, |_| true);

    let mut group = c.benchmark_group("throughput/dynamic");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for t in THREADS {
        group.bench_with_input(BenchmarkId::new("threads", t), &t, |b, &t| {
            b.iter(|| {
                black_box(
                    run_batch(
                        Arc::clone(g),
                        None,
                        &queries,
                        K,
                        Strategy::Dynamic(BoundConfig::ALL),
                        t,
                    )
                    .unwrap(),
                )
            });
        });
    }
    group.finish();

    let engine = QueryEngine::new(Arc::clone(g));
    let (base_index, _) = engine.build_index(&IndexParams {
        k_max: 100,
        ..Default::default()
    });

    let mut group = c.benchmark_group("throughput/indexed");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    // The paper's sequential-dynamic stream: the 1-thread reference point.
    group.bench_function("sequential", |b| {
        b.iter(|| {
            let mut idx = base_index.clone();
            black_box(
                run_indexed_batch(
                    Arc::clone(g),
                    None,
                    &mut idx,
                    &queries,
                    K,
                    BoundConfig::ALL,
                    IndexedMode::Sequential,
                )
                .unwrap(),
            )
        });
    });
    for t in THREADS {
        for merge_every in [0usize, 16] {
            let label = if merge_every == 0 {
                format!("snapshot_merge_end/{t}")
            } else {
                format!("snapshot_merge_{merge_every}/{t}")
            };
            group.bench_function(BenchmarkId::new("threads", label), |b| {
                b.iter(|| {
                    let mut idx = base_index.clone();
                    black_box(
                        run_indexed_batch(
                            Arc::clone(g),
                            None,
                            &mut idx,
                            &queries,
                            K,
                            BoundConfig::ALL,
                            IndexedMode::Snapshot {
                                threads: t,
                                merge_every,
                            },
                        )
                        .unwrap(),
                    )
                });
            });
        }
    }
    group.finish();
}

/// Daemon-side throughput: one `batch` op (64 queries, one round-trip)
/// against a live `rkrd`, with and without a crowd of parked idle
/// connections, on both event-loop backends. The batch executes as one
/// adaptive shared-context pass server-side, so this is the serving
/// counterpart of the in-process snapshot rows above — and the parked
/// column shows whether idle connections tax it.
fn serving_throughput(c: &mut Criterion) {
    use rkranks_core::RkrIndex;
    use rkranks_server::{spawn, Client, EventBackend, ServerConfig};
    use std::net::TcpStream;

    let backends = {
        let mut all = vec![EventBackend::Poll];
        if EventBackend::epoll_supported() {
            all.push(EventBackend::Epoll);
        }
        all
    };
    let queries = bench_queries(dblp(), BATCH, |_| true);
    let nodes: Vec<u32> = queries.iter().map(|q| q.0).collect();

    let mut group = c.benchmark_group("throughput/serving");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for backend in backends {
        for parked in [16usize, 2048] {
            let handle = spawn(
                dblp().clone(),
                None,
                RkrIndex::empty(dblp().num_nodes(), 100),
                "127.0.0.1:0",
                ServerConfig {
                    workers: 2,
                    cache_capacity: 0, // measure computed batches, not hits
                    merge_every: 1024,
                    event_loop: backend,
                    ..Default::default()
                },
            )
            .expect("bind loopback");
            let addr = handle.addr();
            let idle: Vec<TcpStream> = (0..parked)
                .map(|_| TcpStream::connect(addr).expect("park conn"))
                .collect();
            let mut client = Client::connect(addr).expect("connect");
            client.batch(&nodes, K).expect("warm-up batch");

            group.bench_function(
                BenchmarkId::new(format!("batch64/{backend}"), parked),
                |b| b.iter(|| black_box(client.batch(&nodes, K).expect("batch"))),
            );

            drop(idle);
            client.shutdown().expect("shutdown");
            handle.join();
        }
    }
    group.finish();
}

criterion_group!(benches, throughput, serving_throughput);
criterion_main!(benches);
