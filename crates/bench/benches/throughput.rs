//! Serving throughput: queries/second vs worker-thread count.
//!
//! One shared `EngineContext` serves every worker; each sample runs a
//! fixed batch of queries, so sample time is inversely proportional to
//! throughput — compare the per-thread-count medians directly. Covered
//! modes: dynamic batches (embarrassingly parallel), indexed
//! sequential-dynamic (the paper's single-threaded stream, the 1-thread
//! baseline for the snapshot rows), and snapshot-indexed with per-epoch
//! delta merges at two cadences.

use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rkranks_bench::{bench_queries, dblp};
use rkranks_core::{BoundConfig, IndexParams, QueryEngine, Strategy};
use rkranks_eval::runner::{run_batch, run_indexed_batch, IndexedMode};

const K: u32 = 10;
const BATCH: usize = 64;
const THREADS: [usize; 3] = [1, 2, 4];

fn throughput(c: &mut Criterion) {
    let g = dblp();
    // One Arc for the whole target: b.iter closures clone the Arc, not
    // the CSR — the samples measure query work, not graph copies.
    let ga: Arc<rkranks_graph::Graph> = g.into();
    let g = &ga;
    let queries = bench_queries(g, BATCH, |_| true);

    let mut group = c.benchmark_group("throughput/dynamic");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for t in THREADS {
        group.bench_with_input(BenchmarkId::new("threads", t), &t, |b, &t| {
            b.iter(|| {
                black_box(
                    run_batch(
                        Arc::clone(g),
                        None,
                        &queries,
                        K,
                        Strategy::Dynamic(BoundConfig::ALL),
                        t,
                    )
                    .unwrap(),
                )
            });
        });
    }
    group.finish();

    let engine = QueryEngine::new(Arc::clone(g));
    let (base_index, _) = engine.build_index(&IndexParams {
        k_max: 100,
        ..Default::default()
    });

    let mut group = c.benchmark_group("throughput/indexed");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    // The paper's sequential-dynamic stream: the 1-thread reference point.
    group.bench_function("sequential", |b| {
        b.iter(|| {
            let mut idx = base_index.clone();
            black_box(
                run_indexed_batch(
                    Arc::clone(g),
                    None,
                    &mut idx,
                    &queries,
                    K,
                    BoundConfig::ALL,
                    IndexedMode::Sequential,
                )
                .unwrap(),
            )
        });
    });
    for t in THREADS {
        for merge_every in [0usize, 16] {
            let label = if merge_every == 0 {
                format!("snapshot_merge_end/{t}")
            } else {
                format!("snapshot_merge_{merge_every}/{t}")
            };
            group.bench_function(BenchmarkId::new("threads", label), |b| {
                b.iter(|| {
                    let mut idx = base_index.clone();
                    black_box(
                        run_indexed_batch(
                            Arc::clone(g),
                            None,
                            &mut idx,
                            &queries,
                            K,
                            BoundConfig::ALL,
                            IndexedMode::Snapshot {
                                threads: t,
                                merge_every,
                            },
                        )
                        .unwrap(),
                    )
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, throughput);
criterion_main!(benches);
