//! Refinement ablations: how much the Algorithm-2 machinery actually buys.
//!
//! * `bounded_with_krank` — the full Algorithm 2 (d(p,q)-bounded + kRank
//!   early termination), as used inside queries;
//! * `bounded_no_krank` — the d(p,q) bound alone (kRank = ∞);
//! * `unbounded_browse` — the naive §2 refinement that browses until `q`
//!   settles.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use rkranks_bench::{bench_queries, dblp, QueryCursor};
use rkranks_core::refine::{refine_rank, refine_rank_unbounded, RefineHooks};
use rkranks_core::{QuerySpec, QueryStats};
use rkranks_graph::{distance, DijkstraWorkspace, NodeId};

fn refine_ablation(c: &mut Criterion) {
    let g = dblp();
    // Candidate/query pairs at realistic distances: random nodes vs a
    // rotating set of query nodes, with d(p,q) precomputed as the SDS tree
    // would supply it.
    let queries = bench_queries(g, 16, |_| true);
    let candidates = bench_queries(g, 64, |_| true);
    let pairs: Vec<(NodeId, NodeId, f64)> = candidates
        .iter()
        .zip(queries.iter().cycle())
        .filter(|(p, q)| p != q)
        .map(|(&p, &q)| (p, q, distance(g, p, q)))
        .filter(|&(_, _, d)| d.is_finite())
        .collect();
    assert!(!pairs.is_empty());

    let mut group = c.benchmark_group("refine/dblp");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));

    group.bench_function("bounded_with_krank", |b| {
        let mut ws = DijkstraWorkspace::new(g.num_nodes());
        let mut stats = QueryStats::default();
        let mut cursor = QueryCursor::new((0..pairs.len() as u32).map(NodeId).collect());
        b.iter(|| {
            let (p, q, d) = pairs[cursor.next().index()];
            black_box(refine_rank(
                g,
                QuerySpec::Mono,
                &mut ws,
                p,
                q,
                d,
                20, // a realistic mid-query kRank
                &mut RefineHooks::none(),
                &mut stats,
            ))
        });
    });

    group.bench_function("bounded_no_krank", |b| {
        let mut ws = DijkstraWorkspace::new(g.num_nodes());
        let mut stats = QueryStats::default();
        let mut cursor = QueryCursor::new((0..pairs.len() as u32).map(NodeId).collect());
        b.iter(|| {
            let (p, q, d) = pairs[cursor.next().index()];
            black_box(refine_rank(
                g,
                QuerySpec::Mono,
                &mut ws,
                p,
                q,
                d,
                u32::MAX,
                &mut RefineHooks::none(),
                &mut stats,
            ))
        });
    });

    group.bench_function("unbounded_browse", |b| {
        let mut ws = DijkstraWorkspace::new(g.num_nodes());
        let mut stats = QueryStats::default();
        let mut cursor = QueryCursor::new((0..pairs.len() as u32).map(NodeId).collect());
        b.iter(|| {
            let (p, q, _) = pairs[cursor.next().index()];
            black_box(refine_rank_unbounded(
                g,
                QuerySpec::Mono,
                &mut ws,
                p,
                q,
                u32::MAX,
                &mut stats,
            ))
        });
    });
    group.finish();
}

criterion_group!(benches, refine_ablation);
criterion_main!(benches);
