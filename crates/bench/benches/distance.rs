//! Distance-substrate ablations: what the 2-hop hub-label oracle costs
//! to build and what it buys at query time.
//!
//! Three groups:
//!
//! * `labels/build` — PLL label construction cost per hub ordering
//!   (the price paid once per graph epoch);
//! * `distance/pointwise` — one exact `d(s, t)`: hub-label sorted-list
//!   merge vs early-exit Dijkstra vs a full SSSP (what a traversal pays
//!   when it cannot early-exit);
//! * `query/end_to_end` — whole reverse k-ranks queries, `dynamic-three`
//!   vs `dynamic-hub` (the oracle's `count_within` rank bound stacked on
//!   the paper's three bounds).

use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use rkranks_bench::{bench_queries, dblp, epinions, QueryCursor};
use rkranks_core::{BoundConfig, EngineContext, QueryRequest, Strategy};
use rkranks_graph::{distance, sssp, DijkstraOracle, DistanceOracle, HubLabels, HubOrder, NodeId};

fn label_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("labels/build");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("dblp/degree", |b| {
        let g = dblp();
        b.iter(|| black_box(HubLabels::build(g, HubOrder::Degree, 0)));
    });
    group.bench_function("dblp/closeness", |b| {
        let g = dblp();
        b.iter(|| {
            black_box(HubLabels::build(
                g,
                HubOrder::Closeness {
                    samples: 8,
                    seed: 42,
                },
                0,
            ))
        });
    });
    group.bench_function("epinions/degree", |b| {
        let g = epinions();
        b.iter(|| black_box(HubLabels::build(g, HubOrder::Degree, 0)));
    });
    group.finish();
}

fn pointwise(c: &mut Criterion) {
    let g = dblp();
    let (labels, _) = HubLabels::build(g, HubOrder::Degree, 0);
    let dij = DijkstraOracle::new(Arc::new(g.clone()), 0);
    let sources = bench_queries(g, 32, |_| true);
    let targets = bench_queries(g, 37, |_| true);
    let pairs: Vec<(NodeId, NodeId)> = sources
        .iter()
        .flat_map(|&s| targets.iter().map(move |&t| (s, t)))
        .filter(|(s, t)| s != t)
        .collect();

    let mut group = c.benchmark_group("distance/pointwise");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));

    group.bench_function("hub_labels", |b| {
        let mut cursor = QueryCursor::new((0..pairs.len() as u32).map(NodeId).collect());
        b.iter(|| {
            let (s, t) = pairs[cursor.next().index()];
            black_box(labels.distance(s, t))
        });
    });

    group.bench_function("dijkstra_early_exit", |b| {
        let mut cursor = QueryCursor::new((0..pairs.len() as u32).map(NodeId).collect());
        b.iter(|| {
            let (s, t) = pairs[cursor.next().index()];
            black_box(dij.distance(s, t))
        });
    });

    group.bench_function("full_sssp", |b| {
        let mut cursor = QueryCursor::new((0..pairs.len() as u32).map(NodeId).collect());
        b.iter(|| {
            let (s, t) = pairs[cursor.next().index()];
            black_box(sssp(g, s)[t.index()])
        });
    });

    // Sanity outside the timed loops: the substrates agree.
    for &(s, t) in pairs.iter().take(50) {
        let (a, b) = (labels.distance(s, t), distance(g, s, t));
        assert!(
            (a == b) || (a - b).abs() < 1e-9,
            "oracle mismatch at ({s},{t})"
        );
    }
    group.finish();
}

fn end_to_end(c: &mut Criterion) {
    let g = dblp();
    let plain = EngineContext::new(g.clone());
    let (labels, _) = HubLabels::build(g, HubOrder::Degree, 0);
    let hub = EngineContext::new(g.clone()).with_oracle(Arc::new(labels));
    let queries = bench_queries(g, 24, |_| true);

    let mut group = c.benchmark_group("query/end_to_end");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    for (name, ctx, bounds) in [
        ("dynamic_three", &plain, BoundConfig::ALL),
        ("dynamic_hub", &hub, BoundConfig::HUB),
    ] {
        group.bench_function(name, |b| {
            let mut scratch = ctx.new_scratch();
            let mut cursor = QueryCursor::new(queries.clone());
            b.iter(|| {
                let req =
                    QueryRequest::new(cursor.next(), 10).with_strategy(Strategy::Dynamic(bounds));
                black_box(ctx.execute(&mut scratch, &req).unwrap())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, label_build, pointwise, end_to_end);
criterion_main!(benches);
