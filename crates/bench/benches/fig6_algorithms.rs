//! Figure 6: query cost vs k for Static / Dynamic / Dynamic-Indexed on the
//! DBLP-like and Epinions-like graphs.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rkranks_bench::{bench_queries, dblp, epinions, QueryCursor};
use rkranks_core::{BoundConfig, IndexAccess, IndexParams, QueryEngine, QueryRequest, Strategy};
use rkranks_graph::Graph;

const KS: [u32; 3] = [5, 20, 100];

fn bench_dataset(c: &mut Criterion, label: &str, g: &'static Graph) {
    let mut group = c.benchmark_group(format!("fig6/{label}"));
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    let queries = bench_queries(g, 64, |_| true);

    for k in KS {
        group.bench_with_input(BenchmarkId::new("static", k), &k, |b, &k| {
            let mut engine = QueryEngine::new(g);
            let mut cursor = QueryCursor::new(queries.clone());
            b.iter(|| {
                let req = QueryRequest::new(cursor.next(), k).with_strategy(Strategy::Static);
                black_box(engine.execute(&req).unwrap())
            });
        });
        group.bench_with_input(BenchmarkId::new("dynamic", k), &k, |b, &k| {
            let mut engine = QueryEngine::new(g);
            let mut cursor = QueryCursor::new(queries.clone());
            b.iter(|| {
                black_box(
                    engine
                        .execute(&QueryRequest::new(cursor.next(), k))
                        .unwrap(),
                )
            });
        });
        group.bench_with_input(BenchmarkId::new("dynamic_indexed", k), &k, |b, &k| {
            let mut engine = QueryEngine::new(g);
            let params = IndexParams {
                k_max: 100,
                ..Default::default()
            };
            let (mut idx, _) = engine.build_index(&params);
            let mut cursor = QueryCursor::new(queries.clone());
            b.iter(|| {
                let req = QueryRequest::new(cursor.next(), k)
                    .with_strategy(Strategy::Indexed(BoundConfig::ALL));
                black_box(
                    engine
                        .execute_with(Some(&mut IndexAccess::Live(&mut idx)), &req)
                        .unwrap(),
                )
            });
        });
    }
    group.finish();
}

fn fig6(c: &mut Criterion) {
    bench_dataset(c, "dblp", dblp());
    bench_dataset(c, "epinions", epinions());
}

criterion_group!(benches, fig6);
criterion_main!(benches);
