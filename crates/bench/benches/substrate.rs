//! Substrate ablations for the design choices called out in the repository
//! README (traversal-substrate section):
//!
//! * decrease-key [`IndexedHeap`] vs a lazy-deletion `std::collections::BinaryHeap`
//!   Dijkstra (the paper's pseudocode assumes decrease-key);
//! * reusing a generation-stamped [`DijkstraWorkspace`] vs allocating fresh
//!   per-query state (the workhorse-collection pattern).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use rkranks_bench::{bench_queries, dblp, QueryCursor};
use rkranks_graph::{DijkstraWorkspace, DistanceBrowser, Graph, NodeId};

/// Reference Dijkstra with lazy deletion (duplicate heap entries, no
/// decrease-key) and fresh allocations.
fn dijkstra_lazy(g: &Graph, source: NodeId) -> Vec<f64> {
    let n = g.num_nodes() as usize;
    let mut dist = vec![f64::INFINITY; n];
    let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
    // order by bit-pattern of the distance (valid for non-negative floats)
    let key = |d: f64| d.to_bits();
    dist[source.index()] = 0.0;
    heap.push(Reverse((key(0.0), source.0)));
    while let Some(Reverse((kd, u))) = heap.pop() {
        let d = f64::from_bits(kd);
        if d > dist[u as usize] {
            continue; // stale entry
        }
        let (ts, ws) = g.out_neighbors(NodeId(u));
        for (t, w) in ts.iter().zip(ws.iter()) {
            let nd = d + *w;
            if nd < dist[t.index()] {
                dist[t.index()] = nd;
                heap.push(Reverse((key(nd), t.0)));
            }
        }
    }
    dist
}

fn substrate(c: &mut Criterion) {
    let g = dblp();
    let queries = bench_queries(g, 32, |_| true);
    let mut group = c.benchmark_group("substrate/sssp");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));

    group.bench_function("indexed_heap_reused_workspace", |b| {
        let mut ws = DijkstraWorkspace::new(g.num_nodes());
        let mut cursor = QueryCursor::new(queries.clone());
        b.iter(|| {
            let q = cursor.next();
            let mut sum = 0.0;
            for (_, d) in DistanceBrowser::new(g, &mut ws, q) {
                sum += d;
            }
            black_box(sum)
        });
    });

    group.bench_function("indexed_heap_fresh_workspace", |b| {
        let mut cursor = QueryCursor::new(queries.clone());
        b.iter(|| {
            let q = cursor.next();
            let mut ws = DijkstraWorkspace::new(g.num_nodes());
            let mut sum = 0.0;
            for (_, d) in DistanceBrowser::new(g, &mut ws, q) {
                sum += d;
            }
            black_box(sum)
        });
    });

    group.bench_function("lazy_binary_heap", |b| {
        let mut cursor = QueryCursor::new(queries.clone());
        b.iter(|| black_box(dijkstra_lazy(g, cursor.next())));
    });
    group.finish();

    // sanity: both Dijkstras agree (checked once, not benched)
    let q = queries[0];
    let lazy = dijkstra_lazy(g, q);
    let fast = rkranks_graph::sssp(g, q);
    for (a, b) in lazy.iter().zip(fast.iter()) {
        assert!((a - b).abs() < 1e-9 || a == b);
    }
}

criterion_group!(benches, substrate);
criterion_main!(benches);
