//! §6.3.1: the naive brute-force baseline vs the framework at k = 1.
//! The paper reports a 5-orders-of-magnitude gap on real Epinions; the
//! shape here is the same at bench scale.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use rkranks_bench::{bench_queries, epinions, QueryCursor};
use rkranks_core::{QueryEngine, QueryRequest, Strategy};

fn naive_vs_framework(c: &mut Criterion) {
    let g = epinions();
    let queries = bench_queries(g, 16, |_| true);
    let mut group = c.benchmark_group("naive_baseline/epinions_k1");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    group.bench_function("naive", |b| {
        let mut engine = QueryEngine::new(g);
        let mut cursor = QueryCursor::new(queries.clone());
        let req = |q| QueryRequest::new(q, 1).with_strategy(Strategy::Naive);
        b.iter(|| black_box(engine.execute(&req(cursor.next())).unwrap()));
    });
    group.bench_function("static", |b| {
        let mut engine = QueryEngine::new(g);
        let mut cursor = QueryCursor::new(queries.clone());
        let req = |q| QueryRequest::new(q, 1).with_strategy(Strategy::Static);
        b.iter(|| black_box(engine.execute(&req(cursor.next())).unwrap()));
    });
    group.bench_function("dynamic", |b| {
        let mut engine = QueryEngine::new(g);
        let mut cursor = QueryCursor::new(queries.clone());
        b.iter(|| {
            black_box(
                engine
                    .execute(&QueryRequest::new(cursor.next(), 1))
                    .unwrap(),
            )
        });
    });
    group.finish();
}

criterion_group!(benches, naive_vs_framework);
criterion_main!(benches);
