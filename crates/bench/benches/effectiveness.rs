//! Tables 3–4 data generation cost: the all-nodes reverse top-k tally and
//! the top-k agreement rate (the paper's effectiveness analysis).

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rkranks_bench::dblp;
use rkranks_graph::topk::{agreement_rate, reverse_top_k_sizes};

fn effectiveness(c: &mut Criterion) {
    let g = dblp();
    let mut group = c.benchmark_group("effectiveness/dblp");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for k in [5u32, 20] {
        group.bench_with_input(BenchmarkId::new("reverse_topk_sizes", k), &k, |b, &k| {
            b.iter(|| black_box(reverse_top_k_sizes(g, k)));
        });
        group.bench_with_input(BenchmarkId::new("agreement_rate", k), &k, |b, &k| {
            b.iter(|| black_box(agreement_rate(g, k)));
        });
    }
    group.finish();
}

criterion_group!(benches, effectiveness);
criterion_main!(benches);
