//! Dispatch overhead: the unified `QueryRequest`/`execute` entry point
//! vs the direct (now deprecated) `query_dynamic` call.
//!
//! `execute` adds one enum match, a `Limits` materialization (two
//! `Option`s; no clock read when no deadline is set), and one
//! per-pop `Limits::exceeded` check to the inner loop. This bench proves
//! the total is not measurable against real query work — the two paths
//! must be within noise of each other.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use rkranks_bench::{bench_queries, dblp, QueryCursor};
use rkranks_core::{BoundConfig, QueryEngine, QueryRequest, Strategy};

fn bench_dispatch(c: &mut Criterion) {
    let g = dblp();
    let mut engine = QueryEngine::new(g);
    let mut cursor = QueryCursor::new(bench_queries(g, 16, |_| true));
    let k = 10;

    let mut group = c.benchmark_group("dispatch");

    // The old direct surface, kept as the baseline the shim must match.
    #[allow(deprecated)]
    group.bench_function("query_dynamic_direct", |b| {
        b.iter(|| {
            black_box(
                engine
                    .query_dynamic(cursor.next(), k, BoundConfig::ALL)
                    .unwrap(),
            )
        });
    });

    // Same algorithm through the unified entry point, request built per
    // call (the serving daemon's shape).
    group.bench_function("execute_request_per_call", |b| {
        b.iter(|| {
            let req = QueryRequest::new(cursor.next(), k)
                .with_strategy(Strategy::Dynamic(BoundConfig::ALL));
            black_box(engine.execute(&req).unwrap())
        });
    });

    // With a (never-tripping) deadline: the per-pop clock checks are the
    // only addition.
    group.bench_function("execute_with_deadline", |b| {
        b.iter(|| {
            let req = QueryRequest::new(cursor.next(), k)
                .with_deadline(std::time::Duration::from_secs(3600));
            black_box(engine.execute(&req).unwrap())
        });
    });

    group.finish();
}

criterion_group!(benches, bench_dispatch);
criterion_main!(benches);
