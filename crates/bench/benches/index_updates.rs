//! Table 14: query cost against a cold index vs an index warmed by a
//! preceding query stream.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use rkranks_bench::{bench_queries, dblp, QueryCursor};
use rkranks_core::{BoundConfig, IndexAccess, IndexParams, QueryEngine, QueryRequest, Strategy};

fn index_updates(c: &mut Criterion) {
    let g = dblp();
    let queries = bench_queries(g, 64, |_| true);
    let warmup = bench_queries(g, 256, |_| true);
    let mut group = c.benchmark_group("index_updates/dblp_k10");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));

    group.bench_function("cold_index", |b| {
        let engine_ro = QueryEngine::new(g);
        let params = IndexParams {
            k_max: 100,
            ..Default::default()
        };
        let (mut idx, _) = engine_ro.build_index(&params);
        let mut engine = QueryEngine::new(g);
        let mut cursor = QueryCursor::new(queries.clone());
        b.iter(|| {
            let req = QueryRequest::new(cursor.next(), 10)
                .with_strategy(Strategy::Indexed(BoundConfig::ALL));
            black_box(
                engine
                    .execute_with(Some(&mut IndexAccess::Live(&mut idx)), &req)
                    .unwrap(),
            )
        });
    });

    group.bench_function("warmed_index", |b| {
        let engine_ro = QueryEngine::new(g);
        let params = IndexParams {
            k_max: 100,
            ..Default::default()
        };
        let (mut idx, _) = engine_ro.build_index(&params);
        let mut engine = QueryEngine::new(g);
        // Absorb 256 queries' worth of refinement knowledge first.
        for &q in &warmup {
            let req = QueryRequest::new(q, 10).with_strategy(Strategy::Indexed(BoundConfig::ALL));
            engine
                .execute_with(Some(&mut IndexAccess::Live(&mut idx)), &req)
                .unwrap();
        }
        let mut cursor = QueryCursor::new(queries.clone());
        b.iter(|| {
            let req = QueryRequest::new(cursor.next(), 10)
                .with_strategy(Strategy::Indexed(BoundConfig::ALL));
            black_box(
                engine
                    .execute_with(Some(&mut IndexAccess::Live(&mut idx)), &req)
                    .unwrap(),
            )
        });
    });
    group.finish();
}

criterion_group!(benches, index_updates);
criterion_main!(benches);
