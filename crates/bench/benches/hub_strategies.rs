//! Table 10: hub-selection strategies (Random / Degree First / Closeness
//! First) measured by indexed-query cost.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rkranks_bench::{bench_queries, dblp, epinions, QueryCursor};
use rkranks_core::{
    BoundConfig, HubStrategy, IndexAccess, IndexParams, QueryEngine, QueryRequest, Strategy,
};
use rkranks_graph::Graph;

fn bench_dataset(c: &mut Criterion, label: &str, g: &'static Graph) {
    let queries = bench_queries(g, 64, |_| true);
    let mut group = c.benchmark_group(format!("hub_strategies/{label}_k10"));
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    for strategy in [
        HubStrategy::Random,
        HubStrategy::DegreeFirst,
        HubStrategy::ClosenessFirst,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.name().replace(' ', "_")),
            &strategy,
            |b, &strategy| {
                let engine_ro = QueryEngine::new(g);
                let params = IndexParams {
                    strategy,
                    k_max: 100,
                    ..Default::default()
                };
                let (mut idx, _) = engine_ro.build_index(&params);
                let mut engine = QueryEngine::new(g);
                let mut cursor = QueryCursor::new(queries.clone());
                b.iter(|| {
                    let req = QueryRequest::new(cursor.next(), 10)
                        .with_strategy(Strategy::Indexed(BoundConfig::ALL));
                    black_box(
                        engine
                            .execute_with(Some(&mut IndexAccess::Live(&mut idx)), &req)
                            .unwrap(),
                    )
                });
            },
        );
    }
    group.finish();
}

fn hub_strategies(c: &mut Criterion) {
    bench_dataset(c, "dblp", dblp());
    bench_dataset(c, "epinions", epinions());
}

criterion_group!(benches, hub_strategies);
criterion_main!(benches);
