//! Tables 12–13: the four bound strategies on max-degree and min-degree
//! query workloads (undirected Epinions-like graph).

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rkranks_bench::{epinions_undirected, QueryCursor};
use rkranks_core::{BoundConfig, QueryEngine, QueryRequest, Strategy};
use rkranks_eval::workload::{max_degree_queries, min_degree_queries};
use rkranks_graph::NodeId;

const KS: [u32; 3] = [1, 20, 100];

fn bench_workload(c: &mut Criterion, label: &str, queries: Vec<NodeId>) {
    let g = epinions_undirected();
    let mut group = c.benchmark_group(format!("bounds/{label}"));
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    for bounds in [
        BoundConfig::PARENT_ONLY,
        BoundConfig::PARENT_COUNT,
        BoundConfig::PARENT_HEIGHT,
        BoundConfig::ALL,
    ] {
        for k in KS {
            group.bench_with_input(BenchmarkId::new(bounds.name(), k), &k, |b, &k| {
                let mut engine = QueryEngine::new(g);
                let mut cursor = QueryCursor::new(queries.clone());
                b.iter(|| {
                    let req = QueryRequest::new(cursor.next(), k)
                        .with_strategy(Strategy::Dynamic(bounds));
                    black_box(engine.execute(&req).unwrap())
                });
            });
        }
    }
    group.finish();
}

fn bound_strategies(c: &mut Criterion) {
    let g = epinions_undirected();
    bench_workload(c, "max_degree", max_degree_queries(g, 32, |_| true));
    bench_workload(c, "min_degree", min_degree_queries(g, 32, |_| true));
}

criterion_group!(benches, bound_strategies);
criterion_main!(benches);
