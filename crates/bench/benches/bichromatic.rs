//! Figure 7: bichromatic reverse k-ranks on the road network (stores are
//! the query class, communities the result class).

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rkranks_bench::{bench_queries, road, QueryCursor};
use rkranks_core::{
    BoundConfig, IndexAccess, IndexParams, Partition, QueryEngine, QueryRequest, Strategy,
};

const KS: [u32; 2] = [5, 100];

fn bichromatic(c: &mut Criterion) {
    let net = road();
    let g = &net.graph;
    let part = Partition::from_v2_nodes(g.num_nodes(), &net.stores);
    let queries = {
        let p = part.clone();
        bench_queries(g, 24, move |v| p.is_v2(v))
    };
    let mut group = c.benchmark_group("fig7/road");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));

    for k in KS {
        group.bench_with_input(BenchmarkId::new("static", k), &k, |b, &k| {
            let mut engine = QueryEngine::bichromatic(g, part.clone());
            let mut cursor = QueryCursor::new(queries.clone());
            b.iter(|| {
                let req = QueryRequest::new(cursor.next(), k).with_strategy(Strategy::Static);
                black_box(engine.execute(&req).unwrap())
            });
        });
        group.bench_with_input(BenchmarkId::new("dynamic", k), &k, |b, &k| {
            let mut engine = QueryEngine::bichromatic(g, part.clone());
            let mut cursor = QueryCursor::new(queries.clone());
            b.iter(|| {
                black_box(
                    engine
                        .execute(&QueryRequest::new(cursor.next(), k))
                        .unwrap(),
                )
            });
        });
        group.bench_with_input(BenchmarkId::new("dynamic_indexed", k), &k, |b, &k| {
            let mut engine = QueryEngine::bichromatic(g, part.clone());
            let params = IndexParams {
                k_max: 100,
                ..Default::default()
            };
            let (mut idx, _) = engine.build_index(&params);
            let mut cursor = QueryCursor::new(queries.clone());
            b.iter(|| {
                let req = QueryRequest::new(cursor.next(), k)
                    .with_strategy(Strategy::Indexed(BoundConfig::ALL));
                black_box(
                    engine
                        .execute_with(Some(&mut IndexAccess::Live(&mut idx)), &req)
                        .unwrap(),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bichromatic);
criterion_main!(benches);
