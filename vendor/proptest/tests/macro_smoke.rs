//! End-to-end checks of the `proptest!` macro: values are really generated,
//! failures really fail, and `?` / closure-based `prop_assert` compile.

use proptest::prelude::*;

fn helper_that_uses_question_mark(x: u32) -> Result<(), TestCaseError> {
    prop_assert!(x < 1_000_000, "x out of range: {x}");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn ranges_stay_in_bounds(x in 3u32..17, f in -2.0f64..2.0, n in 1usize..=4) {
        prop_assert!((3..17).contains(&x));
        prop_assert!((-2.0..2.0).contains(&f));
        prop_assert!((1..=4).contains(&n));
        helper_that_uses_question_mark(x)?;
    }

    #[test]
    fn tuples_and_vec_strategies_compose(
        (n, pairs) in (2u32..=8).prop_flat_map(|n| {
            (Just(n), proptest::collection::vec((0..n, 0..n), 0..=12))
        }),
        flags in proptest::collection::vec(any::<bool>(), 5),
    ) {
        prop_assert!(n >= 2);
        for (a, b) in pairs {
            prop_assert!(a < n && b < n, "pair ({a}, {b}) out of range for n={n}");
        }
        prop_assert_eq!(flags.len(), 5);
    }

    #[test]
    fn boxed_strategies_clone_and_generate(w in (1u32..=3).prop_map(|x| x as f64).boxed()) {
        prop_assert!((1.0..=3.0).contains(&w));
        prop_assert_eq!(w, w.trunc(), "integer-valued weights only");
    }

    #[test]
    #[should_panic(expected = "proptest")]
    fn failing_property_actually_fails(x in 0u32..100) {
        // Values 0..100 are generated, so this must trip within 32 cases.
        prop_assert!(x < 2, "saw x themselves = {x}");
    }
}

#[test]
fn cases_see_distinct_values() {
    // The same strategy generates different values across cases: run the
    // generator directly and count distinct outputs.
    use proptest::strategy::Strategy;
    let strat = 0u64..u64::MAX;
    let mut seen = std::collections::HashSet::new();
    for case in 0..16 {
        let mut rng = proptest::test_runner::TestRng::for_case("distinct", case);
        seen.insert(strat.generate(&mut rng));
    }
    assert!(
        seen.len() >= 15,
        "only {} distinct values in 16 cases",
        seen.len()
    );
}
