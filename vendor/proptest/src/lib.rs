//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors the
//! subset of the proptest API its test suites use: [`strategy::Strategy`] with
//! `prop_map` / `prop_flat_map` / `boxed`, range and tuple strategies,
//! [`collection::vec`], [`arbitrary::any`], the [`proptest!`] macro, and the
//! `prop_assert*` family.
//!
//! Semantics differ from real proptest in one deliberate way: **no
//! shrinking**. Each test runs `ProptestConfig::cases` deterministic seeded
//! cases; a failure reports the case number and RNG seed so it can be
//! replayed, but the failing input is not minimized.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Define seeded property tests.
///
/// Supported grammar (the subset real proptest accepts that this workspace
/// uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn name(pattern in strategy, x in 0u32..10) { body }
/// }
/// ```
///
/// The body may use `?` on `Result<_, TestCaseError>` and the `prop_assert*`
/// macros.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = ($cfg:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let __strategy = ($($strat,)+);
                let __test_name = concat!(module_path!(), "::", stringify!($name));
                for __case in 0..__config.cases {
                    let mut __rng =
                        $crate::test_runner::TestRng::for_case(__test_name, __case);
                    let __seed = __rng.seed();
                    let ($($pat,)+) =
                        $crate::strategy::Strategy::generate(&__strategy, &mut __rng);
                    let __outcome: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        Ok(())
                    })();
                    if let Err(__e) = __outcome {
                        panic!(
                            "proptest {} failed at case {}/{} (rng seed {:#x}): {}",
                            __test_name, __case, __config.cases, __seed, __e
                        );
                    }
                }
            }
        )*
    };
}

/// Like `assert!`, but fails the proptest case via `Err(TestCaseError)`
/// instead of panicking, so it works inside closures returning
/// `Result<_, TestCaseError>`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// `assert_eq!` analogue of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`\n {}",
            __l,
            __r,
            format!($($fmt)*)
        );
    }};
}

/// `assert_ne!` analogue of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `left != right`\n  both: `{:?}`",
            __l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `left != right`\n  both: `{:?}`\n {}",
            __l,
            format!($($fmt)*)
        );
    }};
}
