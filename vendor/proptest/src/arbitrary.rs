//! `any::<T>()` — canonical strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// The strategy [`any`] returns.
    type Strategy: Strategy<Value = Self>;

    /// The canonical strategy for `Self`.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `A` (e.g. `any::<bool>()`).
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Whole-domain strategy for a primitive type (see [`Arbitrary`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary_primitive {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().random()
            }
        }

        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;

            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(std::marker::PhantomData)
            }
        }
    )*};
}

impl_arbitrary_primitive!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);
