//! Collection strategies (`vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Length specification for [`vec()`]: an exact size or a range of sizes.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` with length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng
            .rng()
            .random_range(self.size.lo..=self.size.hi_inclusive);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_size_spec() {
        let mut rng = TestRng::for_case("collection::tests", 0);
        let exact = vec(0u32..10, 5);
        assert_eq!(exact.generate(&mut rng).len(), 5);
        let ranged = vec(0u32..10, 2..7);
        for _ in 0..100 {
            let v = ranged.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }
}
