//! Config, error type, and the seeded per-case RNG.

use std::fmt;

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Per-`proptest!` block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of seeded cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed test case (carried by `prop_assert*` and `?`).
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }

    /// Real proptest distinguishes rejects from failures; the stand-in
    /// treats both as failures.
    pub fn reject(message: impl Into<String>) -> Self {
        Self::fail(message)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// The RNG handed to strategies: deterministic per (test name, case index),
/// so failures replay without any persistence files.
pub struct TestRng {
    seed: u64,
    rng: StdRng,
}

/// FNV-1a, so each test gets a distinct but stable stream.
fn hash_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl TestRng {
    /// RNG for one case of one named test.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let seed = hash_name(test_name) ^ (u64::from(case)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        TestRng {
            seed,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The seed this case was generated from (for failure reports).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The underlying generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }
}
