//! The [`Strategy`] trait and combinators (no shrinking — see crate docs).

use std::sync::Arc;

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for generating values of `Self::Value` from a seeded RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with a pure function.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then use it to pick a second strategy to draw from
    /// (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erase into a cloneable [`BoxedStrategy`].
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Arc::new(self),
        }
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Object-safe inner trait backing [`BoxedStrategy`].
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply cloneable strategy (see [`Strategy::boxed`]).
pub struct BoxedStrategy<T> {
    inner: Arc<dyn DynStrategy<T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate_dyn(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for ::std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().random_range(self.clone())
            }
        }

        impl Strategy for ::std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for ::std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().random_range(self.clone())
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combinators_compose() {
        let mut rng = TestRng::for_case("strategy::tests", 0);
        let s = (1u32..=3)
            .prop_map(|x| x * 10)
            .prop_flat_map(|hi| (0u32..hi).prop_map(move |x| (hi, x)))
            .boxed();
        for _ in 0..200 {
            let (hi, x) = s.clone().generate(&mut rng);
            assert!(hi == 10 || hi == 20 || hi == 30);
            assert!(x < hi);
        }
    }

    #[test]
    fn just_yields_constant() {
        let mut rng = TestRng::for_case("strategy::tests", 1);
        assert_eq!(Just(7u8).generate(&mut rng), 7);
        assert_eq!((Just(1u8), Just(2u8)).generate(&mut rng), (1, 2));
    }
}
