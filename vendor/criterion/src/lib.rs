//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the workspace vendors the
//! API subset its benches use: [`Criterion`], [`BenchmarkGroup`],
//! [`Bencher::iter`], [`BenchmarkId`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros, with `harness = false` bench targets exactly
//! like the real crate.
//!
//! Measurement is deliberately simple: per benchmark it warms up, picks an
//! iteration count targeting `measurement_time / sample_size` per sample,
//! collects `sample_size` wall-clock samples, and prints median and spread.
//! No plots, no statistics beyond that — enough to compare hot paths locally
//! and to keep `cargo bench` runs bounded.
//!
//! CLI: a single optional positional argument filters benchmarks by
//! substring (like real criterion); `--bench`, `--quick`, and unknown flags
//! are accepted and ignored (cargo passes `--bench` to harness-less bench
//! binaries).

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level bench context; hands out groups and runs benchmarks.
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
    quick: bool,
}

impl Criterion {
    /// Apply command-line configuration (benchmark name filter, `--quick`).
    pub fn configure_from_args(mut self) -> Self {
        // Real-criterion flags that take a value: skip the value too, so it
        // is not mistaken for a name filter.
        const VALUE_FLAGS: [&str; 9] = [
            "--save-baseline",
            "--baseline",
            "--load-baseline",
            "--sample-size",
            "--measurement-time",
            "--warm-up-time",
            "--profile-time",
            "--output-format",
            "--color",
        ];
        let mut args = std::env::args().skip(1).peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => self.quick = true,
                s if VALUE_FLAGS.contains(&s) => {
                    args.next();
                }
                s if s.starts_with('-') => {} // --bench and friends: ignore
                s => self.filter = Some(s.to_string()),
            }
        }
        if let Some(f) = &self.filter {
            println!("(filtering benchmarks by substring '{f}')");
        }
        self
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let settings = GroupSettings::default();
        self.run_one(&id.into().full_name(None), settings, f);
        self
    }

    /// Start a named group sharing sample-count / measurement-time settings.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            settings: GroupSettings::default(),
        }
    }

    fn run_one<F>(&mut self, name: &str, mut settings: GroupSettings, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        if self.quick {
            settings.sample_size = settings.sample_size.min(10);
            settings.measurement_time = settings.measurement_time.min(Duration::from_millis(500));
        }

        // Invoke the benchmark closure exactly ONCE, like real criterion:
        // any setup written outside `b.iter()` must not be re-run per
        // sample. `Bencher::iter` executes calibration + all samples.
        let mut b = Bencher {
            settings,
            samples: Vec::new(),
        };
        f(&mut b);
        let mut samples = b.samples;
        if samples.is_empty() {
            println!("{name:<60} (no b.iter() call — nothing measured)");
            return;
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];
        let lo = samples[samples.len() / 10];
        let hi = samples[samples.len() - 1 - samples.len() / 10];
        println!(
            "{name:<60} time: [{} {} {}]",
            format_time(lo),
            format_time(median),
            format_time(hi),
        );
    }
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

#[derive(Clone, Copy)]
struct GroupSettings {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for GroupSettings {
    fn default() -> Self {
        GroupSettings {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
        }
    }
}

/// A named set of benchmarks sharing settings (see
/// [`Criterion::benchmark_group`]).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    settings: GroupSettings,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.settings.sample_size = n;
        self
    }

    /// Wall-clock budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.into().full_name(Some(&self.name));
        self.criterion.run_one(&name, self.settings, f);
        self
    }

    /// Run one parameterized benchmark; the closure receives `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = id.into().full_name(Some(&self.name));
        self.criterion
            .run_one(&name, self.settings, |b| f(b, input));
        self
    }

    /// End the group (accepted for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// Times the closure handed to `bench_function` / `bench_with_input`.
/// One `iter` call runs the whole sampling plan (calibration plus every
/// sample), so benchmark setup outside `iter` executes once.
pub struct Bencher {
    settings: GroupSettings,
    samples: Vec<f64>,
}

impl Bencher {
    /// Measure `routine`: calibrate an iteration count, then collect
    /// `sample_size` wall-clock samples within the measurement-time budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let time_batch = |routine: &mut F, iters: u64| -> Duration {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            start.elapsed()
        };

        // Calibration: grow the batch until one timed batch is long enough
        // to trust the clock.
        let mut iters: u64 = 1;
        let per_iter = loop {
            let elapsed = time_batch(&mut routine, iters);
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                break elapsed.as_secs_f64() / iters as f64;
            }
            iters *= 4;
        };

        // Per-sample iterations so all samples fit the time budget.
        let budget =
            self.settings.measurement_time.as_secs_f64() / self.settings.sample_size as f64;
        let iters = ((budget / per_iter.max(1e-12)) as u64).clamp(1, 1 << 24);

        self.samples = (0..self.settings.sample_size)
            .map(|_| time_batch(&mut routine, iters).as_secs_f64() / iters as f64)
            .collect();
    }
}

/// A benchmark identifier: function name, optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Parameter only (function name comes from the group).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn full_name(&self, group: Option<&str>) -> String {
        let mut parts: Vec<&str> = Vec::new();
        if let Some(g) = group {
            parts.push(g);
        }
        if let Some(f) = &self.function {
            parts.push(f);
        }
        if let Some(p) = &self.parameter {
            parts.push(p);
        }
        parts.join("/")
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            function: Some(s.to_string()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId {
            function: Some(s),
            parameter: None,
        }
    }
}

/// Re-export for call sites that use `criterion::black_box`.
pub use std::hint::black_box;

/// Bundle benchmark functions into a group runner (same shape as real
/// criterion).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generate `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_names() {
        assert_eq!(BenchmarkId::new("f", 32).full_name(Some("g")), "g/f/32");
        assert_eq!(BenchmarkId::from_parameter(8).full_name(Some("g")), "g/8");
        assert_eq!(BenchmarkId::from("solo").full_name(None), "solo");
    }

    #[test]
    fn bencher_runs_calibration_and_all_samples() {
        let settings = GroupSettings {
            sample_size: 5,
            measurement_time: Duration::from_millis(20),
        };
        let mut b = Bencher {
            settings,
            samples: Vec::new(),
        };
        let mut calls = 0u64;
        b.iter(|| calls += 1);
        assert_eq!(b.samples.len(), 5);
        assert!(calls > 0);
        assert!(b.samples.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn setup_outside_iter_runs_once() {
        // The real-criterion contract the benches rely on: expensive setup
        // written before `b.iter()` must not be re-run per sample.
        let mut c = Criterion {
            filter: None,
            quick: true,
        };
        let mut setups = 0u32;
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(8)
            .measurement_time(Duration::from_millis(10));
        group.bench_function("setup_once", |b| {
            setups += 1;
            b.iter(|| std::hint::black_box(1 + 1));
        });
        group.finish();
        assert_eq!(setups, 1, "bench closure must be invoked exactly once");
    }
}
