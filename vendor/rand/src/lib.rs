//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors the
//! small API subset it actually uses, mirroring `rand` 0.9 names so the real
//! crate can be dropped in later without touching call sites:
//!
//! * [`RngCore`] / [`Rng`] with `random()` / `random_range()` / `random_bool()`;
//! * [`SeedableRng::seed_from_u64`];
//! * [`rngs::StdRng`] — deterministic xoshiro256++;
//! * [`seq::SliceRandom`] with `shuffle`.
//!
//! Everything is deterministic given a seed; nothing here is cryptographic.

pub mod rngs;
pub mod seq;

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of `T` from its standard distribution
    /// (`f64`/`f32` uniform in `[0, 1)`, integers over their full range,
    /// `bool` with probability 1/2).
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a (half-open or inclusive) range.
    /// Panics on an empty range.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types constructible from a fixed-size seed, via the `seed_from_u64`
/// convenience every call site in this workspace uses. Deliberately no
/// `from_entropy`: every generator in this workspace must be reproducibly
/// seeded.
pub trait SeedableRng: Sized {
    /// Expand a `u64` into a full generator state (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Standard-distribution sampling (the `T` in [`Rng::random`]).
pub trait StandardUniform: Sized {
    /// Draw one value from the standard distribution for `Self`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardUniform for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges [`Rng::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range. Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased-enough integer sampling in `[0, span)` via 128-bit widening
/// multiply (Lemire's method without the rejection step — fine for
/// simulation workloads, not for statistics).
#[inline]
fn sample_below(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(sample_below(rng, span) as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(sample_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let u = <$t as StandardUniform>::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                // Like the real crate, the closed upper bound of a float
                // range is reachable only up to rounding; a degenerate
                // lo == hi range is still legal and constant.
                lo + <$t as StandardUniform>::sample(rng) * (hi - lo)
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::seq::SliceRandom;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn range_sampling_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = rng.random_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.random_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn range_sampling_hits_all_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
