//! Sequence helpers (`shuffle`) mirroring `rand::seq`.

use crate::{Rng, RngCore};

/// Slice extensions for random sampling and in-place permutation.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// In-place Fisher–Yates shuffle.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..=i);
            self.swap(i, j);
        }
    }
}
