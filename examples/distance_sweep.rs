//! Distance-substrate perf snapshot: hub labels vs Dijkstra, as JSON.
//!
//! ```text
//! cargo run --release --example distance_sweep > BENCH_distance.json
//! # or via the wrapper that records it at the repo root:
//! scripts/bench_distance.sh
//! ```
//!
//! Three measurements per fixture graph, one JSON document out:
//!
//! * **label build** — PLL construction wall time plus the label size
//!   (entries / bytes): the price paid once per graph epoch;
//! * **pointwise distance** — mean time for one exact `d(s, t)` over a
//!   fixed pair sample, hub-label sorted-list merge vs early-exit
//!   Dijkstra traversal, and the resulting speedup;
//! * **end-to-end queries** — whole reverse k-ranks queries,
//!   `dynamic-three` vs `dynamic-hub`, asserted rank-identical pair by
//!   pair before any timing is reported.
//!
//! The number to watch: `pointwise.speedup` is the raw substrate win
//! (typically orders of magnitude — a label merge touches tens of
//! entries where Dijkstra touches the graph), while `end_to_end.speedup`
//! is the realistic one — queries also pay SDS filtering, and the
//! oracle's `count_within` bound converts label knowledge into skipped
//! refinements (`pruned_by_oracle`).

use std::sync::Arc;
use std::time::{Duration, Instant};

use rkranks_core::{BoundConfig, EngineContext, QueryRequest, Strategy};
use rkranks_datasets::{collab_graph, trust_graph, CollabParams, TrustParams};
use rkranks_eval::workload::random_queries;
use rkranks_graph::{DijkstraOracle, DistanceOracle, Graph, HubLabels, HubOrder, NodeId};

const SEED: u64 = 42;
const NODES: u32 = 1200;
const K: u32 = 10;
const PAIRS: usize = 2000;
const QUERIES: usize = 48;

fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

fn pair_sample(g: &Graph) -> Vec<(NodeId, NodeId)> {
    let sources = random_queries(g, 50, SEED ^ 0xD15, |_| true);
    let targets = random_queries(g, 47, SEED ^ 0x7A6, |_| true);
    sources
        .iter()
        .flat_map(|&s| targets.iter().map(move |&t| (s, t)))
        .filter(|(s, t)| s != t)
        .take(PAIRS)
        .collect()
}

fn sweep(name: &str, source: &str, g: Graph) -> String {
    // Label build (the per-epoch cost).
    let built = Instant::now();
    let (labels, stats) = HubLabels::build(&g, HubOrder::Degree, 0);
    let build_secs = secs(built.elapsed());

    // Pointwise: one exact d(s, t) per substrate over the same pairs.
    let dij = DijkstraOracle::new(Arc::new(g.clone()), 0);
    let pairs = pair_sample(&g);
    let timed = |oracle: &dyn DistanceOracle| {
        let started = Instant::now();
        let mut acc = 0.0f64;
        for &(s, t) in &pairs {
            let d = oracle.distance(s, t);
            if d.is_finite() {
                acc += d;
            }
        }
        (secs(started.elapsed()) / pairs.len() as f64, acc)
    };
    let (hub_point, hub_acc) = timed(&labels);
    let (dij_point, dij_acc) = timed(&dij);
    assert!(
        (hub_acc - dij_acc).abs() < 1e-6 * (1.0 + dij_acc.abs()),
        "{name}: oracle distance sums diverged ({hub_acc} vs {dij_acc})"
    );

    // End-to-end: identical queries, dynamic-three vs dynamic-hub, with
    // rank-identity asserted before any timing is trusted.
    let plain = EngineContext::new(g.clone());
    let hub = EngineContext::new(g).with_oracle(Arc::new(labels));
    let queries = random_queries(plain.graph(), QUERIES, SEED ^ 0xE2E, |_| true);
    let run = |ctx: &EngineContext, bounds: BoundConfig| {
        let mut scratch = ctx.new_scratch();
        let mut outs = Vec::with_capacity(queries.len());
        let started = Instant::now();
        for &q in &queries {
            let req = QueryRequest::new(q, K).with_strategy(Strategy::Dynamic(bounds));
            outs.push(ctx.execute(&mut scratch, &req).unwrap());
        }
        (secs(started.elapsed()) / queries.len() as f64, outs)
    };
    let (three_q, three_outs) = run(&plain, BoundConfig::ALL);
    let (hub_q, hub_outs) = run(&hub, BoundConfig::HUB);
    let mut pruned = 0u64;
    let mut lookups = 0u64;
    for (a, b) in three_outs.iter().zip(&hub_outs) {
        assert_eq!(
            a.result.entries, b.result.entries,
            "{name}: dynamic-hub diverged from dynamic-three"
        );
        lookups += b.result.stats.oracle_lookups;
        pruned += b.result.stats.pruned_by_oracle;
    }

    format!(
        concat!(
            "    {{\"graph\": \"{}\", \"source\": \"{}\",\n",
            "     \"labels\": {{\"order\": \"degree\", \"build_seconds\": {:.4}, ",
            "\"entries\": {}, \"bytes\": {}}},\n",
            "     \"pointwise\": {{\"pairs\": {}, \"hub_seconds\": {:.3e}, ",
            "\"dijkstra_seconds\": {:.3e}, \"speedup\": {:.1}}},\n",
            "     \"end_to_end\": {{\"queries\": {}, \"k\": {}, ",
            "\"dynamic_three_seconds\": {:.3e}, \"dynamic_hub_seconds\": {:.3e}, ",
            "\"speedup\": {:.2}, \"oracle_lookups\": {}, \"pruned_by_oracle\": {}}}}}"
        ),
        name,
        source,
        build_secs,
        stats.entries,
        stats.bytes,
        pairs.len(),
        hub_point,
        dij_point,
        dij_point / hub_point.max(f64::MIN_POSITIVE),
        queries.len(),
        K,
        three_q,
        hub_q,
        three_q / hub_q.max(f64::MIN_POSITIVE),
        lookups,
        pruned,
    )
}

fn main() {
    let rows = [
        sweep(
            "dblp",
            "collab_graph(with_authors(1200, 42))",
            collab_graph(&CollabParams::with_authors(NODES, SEED)),
        ),
        sweep(
            "epinions",
            "trust_graph(with_users(1200, 42))",
            trust_graph(&TrustParams::with_users(NODES, SEED)),
        ),
    ];
    println!("{{");
    println!("  \"bench\": \"distance_sweep\",");
    println!("  \"note\": \"hub labels vs Dijkstra: per-epoch build cost, pointwise distance, end-to-end dynamic-hub vs dynamic-three (rank-identity asserted)\",");
    println!("  \"sweep\": [");
    println!("{}", rows.join(",\n"));
    println!("  ]");
    println!("}}");
}
