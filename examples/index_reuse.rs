//! The dynamically refined index across a query stream (Table 14's story).
//!
//! ```text
//! cargo run --release --example index_reuse
//! ```
//!
//! Every query writes its refinement discoveries back into the index, so a
//! long-lived index keeps getting cheaper to query. This example runs the
//! same query workload in four segments and prints how the per-segment cost
//! falls as the index warms; it also shows the PPR future-work extension on
//! the same graph.

use reverse_k_ranks::prelude::*;
use rkranks_core::ppr::reverse_k_ranks_ppr;
use rkranks_datasets::{collab_graph, CollabParams};
use rkranks_graph::ppr::PprParams;
use std::time::Instant;

fn main() {
    let g = collab_graph(&CollabParams::with_authors(1_500, 21));
    println!(
        "graph: {} authors / {} edges — one evolving index, 4 query waves\n",
        g.num_nodes(),
        g.num_edges()
    );

    let mut engine = QueryEngine::new(&g);
    let (mut index, build) = engine.build_index(&IndexParams {
        k_max: 50,
        strategy: HubStrategy::DegreeFirst,
        ..Default::default()
    });
    println!(
        "initial index: {} hubs x prefix {} in {:.2?}, {} rrd entries\n",
        build.hubs,
        build.prefix,
        build.build_time,
        index.rrd_entries()
    );

    // A fixed rotation of query nodes, revisited wave after wave.
    let queries: Vec<NodeId> = g.nodes().filter(|v| v.0 % 37 == 0).collect();
    let k = 10;
    for wave in 1..=4 {
        let start = Instant::now();
        let mut refinements = 0u64;
        let mut hits = 0u64;
        for &q in &queries {
            let req = QueryRequest::new(q, k).with_strategy(Strategy::Indexed(BoundConfig::ALL));
            let r = engine
                .execute_with(Some(&mut IndexAccess::Live(&mut index)), &req)
                .unwrap()
                .result;
            refinements += r.stats.refinement_calls;
            hits += r.stats.index_exact_hits;
        }
        println!(
            "wave {wave}: {:>6.2?} total, {:>6.1} refinements/query, {:>5.1} index hits/query, {} rrd entries",
            start.elapsed(),
            refinements as f64 / queries.len() as f64,
            hits as f64 / queries.len() as f64,
            index.rrd_entries()
        );
    }

    // Bonus: the §8 future-work extension — same query, PPR proximity.
    let q = queries[0];
    let req = QueryRequest::new(q, 5).with_strategy(Strategy::Indexed(BoundConfig::ALL));
    let shortest = engine
        .execute_with(Some(&mut IndexAccess::Live(&mut index)), &req)
        .unwrap()
        .result;
    let ppr = reverse_k_ranks_ppr(&g, q, 5, &PprParams::default()).unwrap();
    println!("\nquery {q}: shortest-path vs personalized-PageRank proximity");
    println!("  shortest-path reverse 5-ranks: {:?}", shortest.nodes());
    println!("  PPR reverse 5-ranks:           {:?}", ppr.nodes());
    println!("(different proximity measures surface different communities — the");
    println!(" paper's closing future-work direction, prototyped in rkranks-core::ppr)");
}
