//! Quickstart: the paper's Figure 1 example, end to end.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the seven-researcher toy graph, prints the full rank matrix
//! (Table 1), runs the reverse 2-ranks queries from Example 1 with all
//! three algorithms, and contrasts them with the (empty / overwhelming)
//! reverse top-k answers.

use reverse_k_ranks::prelude::*;
use rkranks_datasets::toy::{self, NAMES};
use rkranks_graph::{rank_matrix, reverse_top_k};

fn main() {
    let g = toy::paper_example();
    println!(
        "Figure 1 graph: {} researchers, {} edges\n",
        g.num_nodes(),
        g.num_edges()
    );

    // Table 1: the rank matrix.
    println!("Rank matrix (rows: from, columns: of — Table 1):");
    print!("{:>10}", "");
    for name in NAMES {
        print!("{name:>10}");
    }
    println!();
    let m = rank_matrix(&g);
    for (i, row) in m.iter().enumerate() {
        print!("{:>10}", NAMES[i]);
        for cell in row {
            match cell {
                Some(r) => print!("{r:>10}"),
                None => print!("{:>10}", "-"),
            }
        }
        println!();
    }

    // Example 1 queries.
    let mut engine = QueryEngine::new(&g);
    for (who, q) in [("Alice", toy::ALICE), ("Eric", toy::ERIC)] {
        println!("\n=== query node: {who} ===");
        let rt2 = reverse_top_k(&g, q, 2);
        println!(
            "reverse top-2   -> {} result(s): [{}]",
            rt2.len(),
            rt2.iter()
                .map(|v| NAMES[v.index()])
                .collect::<Vec<_>>()
                .join(", ")
        );
        for (label, strategy) in [
            ("naive", Strategy::Naive),
            ("static SDS", Strategy::Static),
            ("dynamic SDS", Strategy::Dynamic(BoundConfig::ALL)),
        ] {
            let req = QueryRequest::new(q, 2).with_strategy(strategy);
            let result = engine.execute(&req).unwrap().result;
            let pretty: Vec<String> = result
                .entries
                .iter()
                .map(|e| format!("{} (rank {})", NAMES[e.node.index()], e.rank))
                .collect();
            println!(
                "reverse 2-ranks [{label:>11}] -> [{}]  ({} refinements)",
                pretty.join(", "),
                result.stats.refinement_calls
            );
        }
    }

    // The §4 walkthrough, as an execution trace: Bob, Eric, Caroline are
    // refined; Frank, Sid, George are pruned by the Theorem-2 bounds.
    println!("\ndynamic SDS decision trace for Alice (the paper's §4 walkthrough):");
    let req = QueryRequest::new(toy::ALICE, 2).with_trace();
    let trace = engine.execute(&req).expect("valid query").trace.unwrap();
    print!("{}", trace.render(Some(&NAMES)));

    println!("\nThe paper's point: Alice's reverse top-2 is empty and Eric's would be");
    println!("everyone, while reverse 2-ranks returns exactly two tailored results each.");
}
