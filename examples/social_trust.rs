//! Directed graphs: reverse k-ranks on an Epinions-style trust network.
//!
//! ```text
//! cargo run --release --example social_trust
//! ```
//!
//! On a directed graph `Rank(p, q)` follows arc direction (`p`'s trust
//! radiates outward), so the SDS-tree must grow over the *transpose* and
//! the Lemma-4 count bound is off (its proof needs symmetry). This example
//! shows both, plus the asymmetry of the results.

use reverse_k_ranks::prelude::*;
use rkranks_datasets::{trust_graph, TrustParams};
use rkranks_graph::rank_between;

fn main() {
    let g = trust_graph(&TrustParams::with_users(1_500, 3));
    println!(
        "trust network: {} users, {} trust arcs (directed), avg out-degree {:.1}\n",
        g.num_nodes(),
        g.num_edges(),
        g.average_degree()
    );

    // The most trusted user = highest in-degree.
    let transpose = g.transpose();
    let (influencer, in_deg) = transpose.max_degree().expect("non-empty graph");
    println!("most-trusted user: {influencer} ({in_deg} incoming trust arcs)");

    let mut engine = QueryEngine::new(&g);
    let k = 5;
    let result = engine
        .execute(&QueryRequest::new(influencer, k))
        .unwrap()
        .result;
    println!("\nreverse {k}-ranks of {influencer} — the users who trust them most strongly:");
    let mut ws = DijkstraWorkspace::new(g.num_nodes());
    for e in &result.entries {
        // Demonstrate asymmetry: the rank in the other direction differs.
        let back = rank_between(&g, &mut ws, influencer, e.node);
        println!(
            "  user {:>5} ranks {influencer} at #{:<3} while {influencer} ranks them at {:?}",
            e.node.to_string(),
            e.rank,
            back
        );
    }
    println!(
        "\nstats: {} refinements, {} pruned by Theorem-2 bounds, {} SDS pops",
        result.stats.refinement_calls, result.stats.pruned_by_bound, result.stats.sds_popped
    );

    // Show that directedness matters: a barely-trusted user still gets k
    // recommendations (the cold-start case) as long as someone can reach
    // them through the trust web — in-degree 0 users are unreachable and
    // genuinely have no reverse ranks.
    let cold = g
        .nodes()
        .filter(|&v| transpose.degree(v) == 1 && g.degree(v) > 0)
        .min_by_key(|&v| (transpose.degree(v), v));
    if let Some(cold) = cold {
        let r = engine.execute(&QueryRequest::new(cold, k)).unwrap().result;
        println!(
            "\ncold user {cold} (in-degree {}): reverse {k}-ranks still returns {} users",
            transpose.degree(cold),
            r.entries.len()
        );
    }
}
