//! Collaboration recommendation on a DBLP-style graph.
//!
//! ```text
//! cargo run --release --example collaboration
//! ```
//!
//! The paper's motivating application (§1): recommend collaborators. For a
//! *cold* author (lowest degree) the reverse top-k query returns nothing,
//! while reverse k-ranks always returns k candidates; for a *hot* author
//! reverse top-k floods, while reverse k-ranks shortlists.

use reverse_k_ranks::prelude::*;
use rkranks_datasets::{collab_graph, CollabParams};
use rkranks_graph::reverse_top_k;

fn main() {
    let g = collab_graph(&CollabParams::with_authors(2_000, 7));
    println!(
        "DBLP-like collaboration graph: {} authors, {} edges, avg degree {:.1}\n",
        g.num_nodes(),
        g.num_edges(),
        g.average_degree()
    );

    // A cold author (few collaborations) and a hot one (hub).
    let cold = g
        .nodes()
        .filter(|&v| g.degree(v) > 0)
        .min_by_key(|&v| (g.degree(v), v))
        .expect("non-empty graph");
    let (hot, hot_deg) = g.max_degree().expect("non-empty graph");
    println!("cold author: node {cold} (degree {})", g.degree(cold));
    println!("hot  author: node {hot} (degree {hot_deg})\n");

    let k = 5;
    let mut engine = QueryEngine::new(&g);

    // Pre-build an index so repeated recommendation calls are fast.
    let (mut index, build) = engine.build_index(&IndexParams {
        k_max: 50,
        strategy: HubStrategy::DegreeFirst,
        ..Default::default()
    });
    println!(
        "index: {} hubs, prefix {}, built in {:.2?}\n",
        build.hubs, build.prefix, build.build_time
    );

    for (label, q) in [("cold", cold), ("hot", hot)] {
        let rtk = reverse_top_k(&g, q, k);
        let req = QueryRequest::new(q, k).with_strategy(Strategy::Indexed(BoundConfig::ALL));
        let rkr = engine
            .execute_with(Some(&mut IndexAccess::Live(&mut index)), &req)
            .unwrap()
            .result;
        println!("=== {label} author {q} ===");
        println!("  reverse top-{k}: {} interested author(s)", rtk.len());
        println!("  reverse {k}-ranks (who ranks {q} highest):");
        for e in &rkr.entries {
            println!(
                "    author {:>5} ranks {q} at position {}",
                e.node.to_string(),
                e.rank
            );
        }
        println!(
            "  ({} refinements, {} exact index hits)\n",
            rkr.stats.refinement_calls, rkr.stats.index_exact_hits
        );
    }

    println!("Every query returned exactly {k} recommendations — including the cold");
    println!("author the reverse top-{k} query starves.");
}
