//! Bichromatic case study: supermarkets vs communities on a road network
//! (the paper's Wellcome/Parknshop study, Figure 5).
//!
//! ```text
//! cargo run --release --example supermarket
//! ```
//!
//! Stores form the query class `V2`; residential communities form the
//! candidate class `V1`. A reverse k-ranks query from a store returns the
//! k communities that rank this store highest by travel time — the
//! targeted-promotion list the paper motivates.

use reverse_k_ranks::prelude::*;
use rkranks_core::bichromatic::bichromatic_rank;
use rkranks_datasets::{road_network, RoadParams};

fn main() {
    let net = road_network(&RoadParams::grid(40, 30, 25, 11));
    let g = &net.graph;
    println!(
        "road network: {} junctions, {} road segments, {} stores\n",
        g.num_nodes(),
        g.num_edges(),
        net.stores.len()
    );

    let part = Partition::from_v2_nodes(g.num_nodes(), &net.stores);
    let mut engine = QueryEngine::bichromatic(g, part.clone());

    // Find the two stores closest to each other — direct competitors.
    let mut ws = DijkstraWorkspace::new(g.num_nodes());
    let mut competitors: Option<(f64, NodeId, NodeId)> = None;
    for &s in &net.stores {
        for (v, d) in DistanceBrowser::new(g, &mut ws, s) {
            if v != s && net.is_store[v.index()] {
                if competitors.is_none_or(|(bd, _, _)| d < bd) {
                    competitors = Some((d, s, v));
                }
                break;
            }
        }
    }
    let (dist, wellcome, parknshop) = competitors.expect("at least two stores");
    println!(
        "competing stores: {wellcome} ('Wellcome') and {parknshop} ('Parknshop'), {:.2} apart\n",
        dist
    );

    for store in [wellcome, parknshop] {
        let k = 3;
        let result = engine.execute(&QueryRequest::new(store, k)).unwrap().result;
        println!("=== store {store}: top {k} communities to target ===");
        // routes for the promotion team: a shortest-path tree from the store
        let (parents, dists) = rkranks_graph::shortest_path_tree(g, store);
        for e in &result.entries {
            // show the distance context for the recommendation
            let r = bichromatic_rank(g, &part, &mut ws, e.node, store);
            let hops = rkranks_graph::path::reconstruct_path(&parents, store, e.node)
                .map(|p| p.len() - 1)
                .unwrap_or(0);
            println!(
                "  community {:>5}: ranks this store #{} of {} (verified {:?}), {:.2} travel time over {hops} road segments",
                e.node.to_string(),
                e.rank,
                net.stores.len(),
                r,
                dists[e.node.index()],
            );
        }
        println!("  ({} rank refinements)\n", result.stats.refinement_calls);
    }

    println!("Unlike a top-k query (nearest communities, who may prefer the rival)");
    println!("or a reverse top-1 query (unbounded result size), the reverse k-ranks");
    println!("query hands each store a fixed-size, preference-ordered target list.");
}
