//! Durable restarts: kill the daemon, restart from its snapshot bundle,
//! and get the same serving state back.
//!
//! ```text
//! cargo run --release --example durability
//! ```
//!
//! The daemon checkpoints one self-describing bundle — committed graph,
//! learned index, the epoch pair, and a WAL of staged-but-uncommitted
//! deltas — after every state-changing merge and at shutdown. This example
//! runs two daemon "lives" in one process: the first absorbs a live graph
//! update and shuts down; the second starts from nothing but the bundle
//! and must answer rank-identically at the same graph epoch.

use rkranks_core::{load_snapshot, RkrIndex};
use rkranks_datasets::{collab_graph, CollabParams};
use rkranks_graph::GraphStore;
use rkranks_server::{spawn_store, Client, ServerConfig, UpdateOp};

fn main() {
    let g = collab_graph(&CollabParams::with_authors(300, 13));
    let nodes = g.num_nodes();
    println!("graph: {} authors / {} edges\n", nodes, g.num_edges());

    let dir = std::env::temp_dir().join("rkr-durability-example");
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let bundle = dir.join(format!("state-{}.rkrsnap", std::process::id()));

    let config = ServerConfig {
        workers: 2,
        cache_capacity: 256,
        snapshot: Some(bundle.clone()),
        ..Default::default()
    };

    // First life: serve, commit a live update, learn from queries, die.
    let handle = spawn_store(
        GraphStore::new(g),
        None,
        RkrIndex::empty(nodes, 50),
        "127.0.0.1:0",
        config.clone(),
    )
    .expect("bind first daemon");
    let mut client = Client::connect(handle.addr()).expect("connect");
    client
        .update(&[
            UpdateOp::AddNode,
            UpdateOp::AddEdge {
                u: 5,
                v: nodes as u32,
                w: 0.05,
            },
        ])
        .expect("stage the live update");
    client.flush().expect("commit it");
    let before = client.query(5, 10).expect("pre-restart query");
    println!(
        "life 1: answered at graph epoch {} -> {:?}",
        before.graph_epoch,
        before.entries.iter().take(3).collect::<Vec<_>>()
    );
    client
        .shutdown()
        .expect("shutdown writes the final checkpoint");
    handle.join();

    // Second life: nothing but the bundle.
    let (store, index) = load_snapshot(&bundle).expect("the bundle must load");
    println!(
        "restored: graph epoch {}, index epoch {}, {} staged WAL delta(s)",
        store.graph_epoch(),
        index.epoch(),
        store.pending_deltas()
    );
    let handle =
        spawn_store(store, None, index, "127.0.0.1:0", config).expect("bind second daemon");
    let mut client = Client::connect(handle.addr()).expect("reconnect");
    let after = client.query(5, 10).expect("post-restart query");
    client.shutdown().expect("clean shutdown");
    handle.join();
    std::fs::remove_file(&bundle).ok();

    assert_eq!(
        before.graph_epoch, after.graph_epoch,
        "the restart must resume at the same graph epoch"
    );
    assert_eq!(
        before.entries, after.entries,
        "the restart must serve rank-identical answers"
    );
    println!(
        "life 2: answered at graph epoch {} -> identical entries\n",
        after.graph_epoch
    );
    println!(
        "restart recovered the exact serving state from {:?}",
        bundle
    );
}
