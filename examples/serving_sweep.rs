//! Connection-count sweep for the `rkrd` event-loop core.
//!
//! ```text
//! # self-contained (in-process daemon; parked counts the fd limit allows):
//! cargo run --release --example serving_sweep > BENCH_serving.json
//!
//! # client mode against an external daemon (how scripts/bench_serving.sh
//! # reaches the full 10k leg — daemon and sweep each hold their own half
//! # of the socket pairs, so one process's fd limit is never doubled up):
//! cargo run --release --example serving_sweep -- \
//!     --remote 127.0.0.1:7878 --backend epoll --parked 16,256,2048,10000
//! ```
//!
//! For each event-loop backend and each parked-connection count, the
//! sweep opens that many idle keep-alive connections against the daemon,
//! then measures per-request latency on one active client: cache-hit
//! query round-trips, uncached query round-trips, and `stats` control
//! ops. Self-contained mode prints a complete JSON document; client mode
//! prints one JSON row per parked count (`scripts/bench_serving.sh`
//! assembles the document).
//!
//! The number to watch: on the epoll backend the per-request latency
//! must stay flat as the parked count grows 16 → 10000 — wake-ups are
//! O(ready), and ten thousand silent sockets are never touched. The
//! poll backend scans every open connection per pass, so its column
//! grows with the crowd; that contrast is the point of the event-driven
//! core.

use std::net::TcpStream;
use std::time::Instant;

use rkranks_core::RkrIndex;
use rkranks_datasets::{collab_graph, CollabParams};
use rkranks_server::{spawn, Client, EventBackend, ServerConfig};

const K: u32 = 10;
const K_MAX: u32 = 32;
const AUTHORS: u32 = 400;
const PARKED: [usize; 4] = [16, 256, 2048, 10_000];
const HIT_ROUNDS: usize = 300;
const UNCACHED_ROUNDS: usize = 100;
const STATS_ROUNDS: usize = 200;

fn backends() -> Vec<EventBackend> {
    let mut all = vec![EventBackend::Poll];
    if EventBackend::epoll_supported() {
        all.push(EventBackend::Epoll);
    }
    all
}

/// The soft fd limit, read from /proc (Linux) — `usize::MAX` elsewhere,
/// where the sweep optimistically tries every parked count.
fn fd_limit() -> usize {
    std::fs::read_to_string("/proc/self/limits")
        .ok()
        .and_then(|limits| {
            limits.lines().find_map(|l| {
                l.strip_prefix("Max open files")?
                    .split_whitespace()
                    .next()?
                    .parse()
                    .ok()
            })
        })
        .unwrap_or(usize::MAX)
}

/// `(p50, p99)` of a sample set, in microseconds.
fn percentiles(samples: &mut [u128]) -> (f64, f64) {
    samples.sort_unstable();
    let at = |p: usize| samples[(samples.len() - 1) * p / 100] as f64 / 1000.0;
    (at(50), at(99))
}

fn time_each(rounds: usize, mut op: impl FnMut(usize)) -> (f64, f64) {
    let mut samples: Vec<u128> = Vec::with_capacity(rounds);
    for i in 0..rounds {
        let started = Instant::now();
        op(i);
        samples.push(started.elapsed().as_nanos());
    }
    percentiles(&mut samples)
}

/// Park `parked` idle connections, then measure the three per-request
/// latencies on one active client. Returns one JSON row.
fn measure(addr: std::net::SocketAddr, backend: &str, parked: usize, nodes: &[u32]) -> String {
    eprintln!("sweep: backend={backend} parked={parked}");
    let idle: Vec<TcpStream> = (0..parked)
        .map(|_| TcpStream::connect(addr).expect("park conn"))
        .collect();
    let mut client = Client::connect(addr).expect("connect");
    for &node in nodes {
        client.query(node, K).expect("warm-up query");
    }

    let (hit_p50, hit_p99) = time_each(HIT_ROUNDS, |i| {
        client.query(nodes[i % nodes.len()], K).expect("hit");
    });
    let (raw_p50, raw_p99) = time_each(UNCACHED_ROUNDS, |i| {
        client
            .query_uncached(nodes[i % nodes.len()], K)
            .expect("uncached");
    });
    let (st_p50, st_p99) = time_each(STATS_ROUNDS, |_| {
        client.stats().expect("stats");
    });
    drop(idle);

    format!(
        "{{\"backend\": \"{backend}\", \"parked_connections\": {parked}, \
         \"query_hit_us\": {{\"p50\": {hit_p50:.1}, \"p99\": {hit_p99:.1}}}, \
         \"query_uncached_us\": {{\"p50\": {raw_p50:.1}, \"p99\": {raw_p99:.1}}}, \
         \"stats_us\": {{\"p50\": {st_p50:.1}, \"p99\": {st_p99:.1}}}}}"
    )
}

/// Client mode: sweep an externally started daemon (its address, backend
/// label, and parked counts come from the command line) and print one
/// row per line. The daemon holds the other half of every socket pair in
/// its own process, so parked counts up to the full fd limit fit.
fn remote_sweep(addr: &str, backend: &str, parked_counts: &[usize]) {
    let addr: std::net::SocketAddr = addr.parse().expect("--remote HOST:PORT");
    let nodes: Vec<u32> = (0..64).collect();
    let limit = fd_limit();
    for &parked in parked_counts {
        if parked + 64 > limit {
            eprintln!("skipping {backend}/{parked}: fd limit {limit} is too low");
            continue;
        }
        println!("{}", measure(addr, backend, parked, &nodes));
    }
}

/// Self-contained mode: spawn an in-process daemon per (backend, parked)
/// cell and print the full JSON document. Both halves of every parked
/// socket pair live in this one process, so each cell needs ~2× its
/// parked count in fds — cells over the limit are skipped (use
/// `scripts/bench_serving.sh` for the full 10k leg).
fn local_sweep() {
    let g = collab_graph(&CollabParams::with_authors(AUTHORS, 0xBE7C));
    let n = g.num_nodes();
    let edges = g.num_edges();
    let nodes: Vec<u32> = (0u32..64).map(|i| (i * 5) % n).collect();
    let limit = fd_limit();

    let mut rows = Vec::new();
    for backend in backends() {
        for parked in PARKED {
            if 2 * parked + 64 > limit {
                eprintln!(
                    "skipping {backend}/{parked}: fd limit {limit} cannot hold both \
                     halves of {parked} loopback socket pairs (scripts/bench_serving.sh \
                     splits daemon and sweep into two processes for this leg)"
                );
                continue;
            }
            let handle = spawn(
                g.clone(),
                None,
                RkrIndex::empty(n, K_MAX),
                "127.0.0.1:0",
                ServerConfig {
                    workers: 2,
                    cache_capacity: 4096,
                    merge_every: 0, // keep the epoch (and the cache) stable
                    event_loop: backend,
                    ..Default::default()
                },
            )
            .expect("bind loopback");
            rows.push(format!(
                "    {}",
                measure(handle.addr(), backend.name(), parked, &nodes)
            ));
            let client = Client::connect(handle.addr()).expect("connect ctl");
            client.shutdown().expect("shutdown");
            handle.join();
        }
    }

    println!("{{");
    println!("  \"bench\": \"serving_sweep\",");
    println!("  \"graph\": {{\"nodes\": {n}, \"edges\": {edges}}},");
    println!(
        "  \"k\": {K}, \"workers\": 2, \"rounds\": {{\"query_hit\": {HIT_ROUNDS}, \
         \"query_uncached\": {UNCACHED_ROUNDS}, \"stats\": {STATS_ROUNDS}}},"
    );
    println!("  \"sweep\": [");
    println!("{}", rows.join(",\n"));
    println!("  ]");
    println!("}}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut remote = None;
    let mut backend = String::from("unknown");
    let mut parked: Vec<usize> = PARKED.to_vec();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--remote" => {
                remote = Some(args.get(i + 1).expect("--remote HOST:PORT").clone());
                i += 2;
            }
            "--backend" => {
                backend = args.get(i + 1).expect("--backend NAME").clone();
                i += 2;
            }
            "--parked" => {
                parked = args
                    .get(i + 1)
                    .expect("--parked N,N,...")
                    .split(',')
                    .map(|s| s.trim().parse().expect("--parked takes numbers"))
                    .collect();
                i += 2;
            }
            other => panic!("unknown argument {other} (see the doc comment)"),
        }
    }
    match remote {
        Some(addr) => remote_sweep(&addr, &backend, &parked),
        None => local_sweep(),
    }
}
