#!/usr/bin/env bash
# Distance-substrate perf snapshot: hub-label oracle vs Dijkstra —
# per-epoch label build cost, pointwise d(s,t) speedup, and end-to-end
# dynamic-hub vs dynamic-three query timings (rank-identity asserted by
# the sweep itself) — recorded as BENCH_distance.json at the repo root
# so the distance-substrate trajectory is tracked in-tree from PR 10 on.
set -euo pipefail

cd "$(dirname "$0")/.."

cargo build --release --example distance_sweep
target/release/examples/distance_sweep > BENCH_distance.json
echo "wrote BENCH_distance.json:" >&2
cat BENCH_distance.json
