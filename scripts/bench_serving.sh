#!/usr/bin/env bash
# Serving-core perf snapshot: the connection-count sweep (per-request
# p50/p99 with 16..10k parked idle connections, on every event-loop
# backend the host supports), recorded as BENCH_serving.json at the repo
# root so the serving perf trajectory is tracked in-tree from PR 7 on.
#
# The daemon runs as its own process (`rkr serve`) and the sweep
# (examples/serving_sweep.rs --remote) as another: each holds only its
# half of the parked socket pairs, so the 10k leg needs ~10k fds per
# process instead of 20k in one — the in-process example alone cannot
# reach 10k under a 20k fd limit.
set -euo pipefail

cd "$(dirname "$0")/.."

RKR=target/release/rkr
SWEEP=target/release/examples/serving_sweep
PARKED="${PARKED:-16,256,2048,10000}"

echo "fd limit: $(ulimit -Sn)" >&2
cargo build --release --bin rkr --example serving_sweep

WORK="$(mktemp -d)"
trap 'kill "${SERVE_PID:-}" 2>/dev/null || true; rm -rf "$WORK"' EXIT

"$RKR" gen dblp --scale tiny --seed 7 --out "$WORK/g.edges"
NODES="$("$RKR" stats "$WORK/g.edges" | awk '/^nodes:/ {print $2}')"
EDGES="$("$RKR" stats "$WORK/g.edges" | awk '/^edges:/ {print $2}')"

BACKENDS="poll"
[ "$(uname -s)" = "Linux" ] && BACKENDS="poll epoll"

: > "$WORK/rows.txt"
for BACKEND in $BACKENDS; do
    "$RKR" serve "$WORK/g.edges" --addr 127.0.0.1:0 --workers 2 --cache 4096 \
        --kmax 32 --merge-every 1000000 --event-loop "$BACKEND" \
        > "$WORK/serve-$BACKEND.log" &
    SERVE_PID=$!
    ADDR=""
    for _ in $(seq 1 100); do
        ADDR="$(grep -oE '127\.0\.0\.1:[0-9]+' "$WORK/serve-$BACKEND.log" | head -1 || true)"
        [ -n "$ADDR" ] && break
        sleep 0.1
    done
    [ -n "$ADDR" ] || { echo "rkrd never printed its address"; cat "$WORK/serve-$BACKEND.log"; exit 1; }
    echo "rkrd ($BACKEND) up at $ADDR" >&2

    "$SWEEP" --remote "$ADDR" --backend "$BACKEND" --parked "$PARKED" >> "$WORK/rows.txt"

    "$RKR" ctl "$ADDR" shutdown
    wait "$SERVE_PID"
    SERVE_PID=""
done

{
    echo '{'
    echo '  "bench": "serving_sweep",'
    echo "  \"graph\": {\"source\": \"rkr gen dblp --scale tiny --seed 7\", \"nodes\": $NODES, \"edges\": $EDGES},"
    echo '  "k": 10, "workers": 2, "cache": 4096,'
    echo '  "rounds": {"query_hit": 300, "query_uncached": 100, "stats": 200},'
    echo '  "sweep": ['
    sed 's/^/    /; $!s/$/,/' "$WORK/rows.txt"
    echo '  ]'
    echo '}'
} > BENCH_serving.json
echo "wrote BENCH_serving.json:" >&2
cat BENCH_serving.json
