#!/usr/bin/env bash
# Sharded serving smoke: plan a 2-shard partition, start both shards and
# the scatter-gather coordinator on ephemeral ports, assert a Zipf-skewed
# query mix through the coordinator is rank-identical to the in-process
# dynamic query, route a live update through the coordinator, kill one
# shard and assert the surviving answers are sound partials (exactly the
# survivor's slice), and shut everything down cleanly. Mirrors
# tests/shard_smoke.rs for CI logs that show the real binaries doing the
# real fan-out.
set -euo pipefail

RKR="${RKR:-target/release/rkr}"
WORK="$(mktemp -d)"
trap 'kill "${SHARD0_PID:-}" "${SHARD1_PID:-}" "${COORD_PID:-}" 2>/dev/null || true; rm -rf "$WORK"' EXIT

# scrape the first bound 127.0.0.1:port a daemon prints into its log
scrape_addr() {
    local log="$1" what="$2" addr=""
    for _ in $(seq 1 100); do
        addr="$(grep -oE '127\.0\.0\.1:[0-9]+' "$log" | head -1 || true)"
        [ -n "$addr" ] && break
        sleep 0.1
    done
    [ -n "$addr" ] || { echo "$what never printed its address" >&2; cat "$log" >&2; exit 1; }
    echo "$addr"
}

"$RKR" gen dblp --scale tiny --seed 7 --out "$WORK/g.edges"

# the plan is deterministic and names every shard
"$RKR" shard-plan "$WORK/g.edges" --shards 2 --seed 7 > "$WORK/plan.txt"
grep -q 'shard plan for' "$WORK/plan.txt"
grep -q 'shard   0:' "$WORK/plan.txt"
grep -q 'shard   1:' "$WORK/plan.txt"
grep -q 'rkr coord --shards' "$WORK/plan.txt"
echo "shard plan rendered"

# ---- fleet up: 2 shards + the coordinator ----------------------------
"$RKR" serve "$WORK/g.edges" --addr 127.0.0.1:0 --workers 2 --cache 64 \
    --merge-every 8 --shard-id 0 --shard-count 2 --shard-seed 7 > "$WORK/shard0.log" &
SHARD0_PID=$!
"$RKR" serve "$WORK/g.edges" --addr 127.0.0.1:0 --workers 2 --cache 64 \
    --merge-every 8 --shard-id 1 --shard-count 2 --shard-seed 7 > "$WORK/shard1.log" &
SHARD1_PID=$!
SHARD0="$(scrape_addr "$WORK/shard0.log" "shard 0")"
SHARD1="$(scrape_addr "$WORK/shard1.log" "shard 1")"
grep -q 'serving as shard 0/2' "$WORK/shard0.log"
grep -q 'serving as shard 1/2' "$WORK/shard1.log"

"$RKR" coord --shards "$SHARD0,$SHARD1" --addr 127.0.0.1:0 > "$WORK/coord.log" &
COORD_PID=$!
COORD="$(scrape_addr "$WORK/coord.log" "coordinator")"
echo "fleet up: shards $SHARD0 $SHARD1 behind coordinator $COORD"

# ---- scatter-gather == single box over a Zipf-skewed mix -------------
# (a head-heavy node list: the repeats also exercise the per-shard caches)
# Definition 1 allows any choice among tied ranks, so the invariant here
# is the rank *multiset*; tests/shard_smoke.rs adds the tie-aware
# node-level comparison.
for n in 5 17 5 0 3 5 17 8 2 5; do
    "$RKR" query --remote "$COORD" --node "$n" --k 4 | grep ' rank ' \
        | awk '{print $NF}' | sort -n > "$WORK/coord-$n.txt"
    if [ ! -f "$WORK/local-$n.txt" ]; then
        "$RKR" query "$WORK/g.edges" --node "$n" --k 4 --algo dynamic | grep ' rank ' \
            | awk '{print $NF}' | sort -n > "$WORK/local-$n.txt"
    fi
    diff -u "$WORK/local-$n.txt" "$WORK/coord-$n.txt"
done
echo "scatter-gather == in-process over the Zipf mix"

# a repeat of an already-served query is a fleet-wide cache hit
"$RKR" query --remote "$COORD" --node 5 --k 4 > "$WORK/repeat.txt"
grep -q 'cached: true' "$WORK/repeat.txt"
echo "fleet-wide cache hit observed"

# ---- coordinator telemetry -------------------------------------------
"$RKR" ctl "$COORD" metrics --prom > "$WORK/coord-prom.txt"
grep -q '^rkrd_coord_queries_total' "$WORK/coord-prom.txt"
grep -q 'rkrd_coord_shard_seconds_count{shard="0"}' "$WORK/coord-prom.txt"
grep -q 'rkrd_coord_shard_seconds_count{shard="1"}' "$WORK/coord-prom.txt"
# the merge prunes: more candidates received from shards than returned
awk '
    $1 == "rkrd_coord_candidates_received_total" { recv = $2 }
    $1 == "rkrd_coord_candidates_returned_total" { ret = $2 }
    END {
        if (recv + 0 <= ret + 0) { print "no pruning: received " recv " returned " ret; exit 1 }
    }
' "$WORK/coord-prom.txt"
echo "coordinator metrics scraped (fan-out prunes at the merge)"

# ---- a live update routed through the coordinator --------------------
NODES="$("$RKR" stats "$WORK/g.edges" | awk '/^nodes:/ {print $2}')"
"$RKR" ctl "$COORD" add-node
"$RKR" ctl "$COORD" add-edge 5 "$NODES" 0.01
"$RKR" query --remote "$COORD" --node 5 --k 4 > "$WORK/coord-updated.full"
grep -q 'graph epoch 2' "$WORK/coord-updated.full" || {
    echo "two commits through the coordinator must reach graph epoch 2"
    cat "$WORK/coord-updated.full"; exit 1; }
grep ' rank ' "$WORK/coord-updated.full" | awk '{print $NF}' | sort -n > "$WORK/coord-updated.txt"
# the new nearest neighbour at distance 0.01 must enter the answer
grep -qE "node +$NODES " "$WORK/coord-updated.full" || {
    echo "the committed edge must pull node $NODES into the result"
    cat "$WORK/coord-updated.full"; exit 1; }
awk -v n=$((NODES + 1)) 'NR==1 {$2=n} {print}' "$WORK/g.edges" > "$WORK/g2.edges"
echo "5 $NODES 0.01" >> "$WORK/g2.edges"
"$RKR" query "$WORK/g2.edges" --node 5 --k 4 --algo dynamic | grep ' rank ' \
    | awk '{print $NF}' | sort -n > "$WORK/local-updated.txt"
diff -u "$WORK/local-updated.txt" "$WORK/coord-updated.txt"
echo "coordinator-routed update == in-process rebuild"

# ---- kill one shard: answers degrade to sound partials ---------------
kill -9 "$SHARD1_PID"
wait "$SHARD1_PID" 2>/dev/null || true
SHARD1_PID=""
for n in 5 17 3; do
    "$RKR" query --remote "$COORD" --node "$n" --k 4 > "$WORK/partial-$n.full"
    grep -q 'PARTIAL' "$WORK/partial-$n.full" || {
        echo "node $n: a dead shard must flag the merge partial"
        cat "$WORK/partial-$n.full"; exit 1; }
    # with one of two shards dead, the merge is exactly the survivor's
    # owned slice — and every rank in it is still exact
    grep ' rank ' "$WORK/partial-$n.full" | sort > "$WORK/partial-$n.txt"
    "$RKR" query --remote "$SHARD0" --node "$n" --k 4 | grep ' rank ' | sort > "$WORK/survivor-$n.txt"
    diff -u "$WORK/survivor-$n.txt" "$WORK/partial-$n.txt"
done
# batches have no partial channel on the wire: they fail loudly instead
if "$RKR" ctl "$COORD" flush > "$WORK/flush-dead.txt" 2>&1; then
    echo "a fleet-wide flush with a dead shard must fail loudly"
    cat "$WORK/flush-dead.txt"; exit 1
fi
echo "killed shard: sound partials from the survivor, writes refused"

# ---- clean shutdown --------------------------------------------------
"$RKR" ctl "$COORD" shutdown
wait "$COORD_PID"
COORD_PID=""
grep -q 'coordinator stopped' "$WORK/coord.log"
# the coordinator's shutdown is its own: the surviving shard still serves
"$RKR" query --remote "$SHARD0" --node 5 --k 4 > /dev/null
"$RKR" ctl "$SHARD0" shutdown
wait "$SHARD0_PID"
SHARD0_PID=""
echo "shard smoke OK"
