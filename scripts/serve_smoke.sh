#!/usr/bin/env bash
# Loopback serving smoke: start rkrd on an ephemeral port, run a remote
# query, assert it is rank-identical to the in-process dynamic query, and
# shut the daemon down cleanly. Mirrors tests/serve_smoke.rs for CI logs
# that show the real binary doing the real round-trip.
set -euo pipefail

RKR="${RKR:-target/release/rkr}"
WORK="$(mktemp -d)"
trap 'kill "${SERVE_PID:-}" 2>/dev/null || true; rm -rf "$WORK"' EXIT

"$RKR" gen dblp --scale tiny --seed 7 --out "$WORK/g.edges"

"$RKR" serve "$WORK/g.edges" --addr 127.0.0.1:0 --workers 2 --cache 256 \
    --merge-every 8 > "$WORK/serve.log" &
SERVE_PID=$!

# wait for the banner and scrape the bound address
for _ in $(seq 1 100); do
    ADDR="$(grep -oE '127\.0\.0\.1:[0-9]+' "$WORK/serve.log" | head -1 || true)"
    [ -n "$ADDR" ] && break
    sleep 0.1
done
[ -n "${ADDR:-}" ] || { echo "rkrd never printed its address"; cat "$WORK/serve.log"; exit 1; }
echo "rkrd up at $ADDR"

# remote result must be rank-identical to the in-process dynamic query
"$RKR" query --remote "$ADDR" --node 5 --k 4 | grep ' rank ' | sort > "$WORK/remote.txt"
"$RKR" query "$WORK/g.edges" --node 5 --k 4 --algo dynamic | grep ' rank ' | sort > "$WORK/local.txt"
diff -u "$WORK/local.txt" "$WORK/remote.txt"
echo "remote == in-process"

# a repeat is a cache hit
"$RKR" query --remote "$ADDR" --node 5 --k 4 | grep -q 'cached: true'
echo "cache hit observed"

"$RKR" ctl "$ADDR" stats
"$RKR" ctl "$ADDR" flush
"$RKR" ctl "$ADDR" shutdown

# clean exit
wait "$SERVE_PID"
SERVE_PID=""
cat "$WORK/serve.log"
echo "serve smoke OK"
