#!/usr/bin/env bash
# Loopback serving smoke: start rkrd on an ephemeral port, run a remote
# query, assert it is rank-identical to the in-process dynamic query, and
# shut the daemon down cleanly. Mirrors tests/serve_smoke.rs for CI logs
# that show the real binary doing the real round-trip.
set -euo pipefail

RKR="${RKR:-target/release/rkr}"
WORK="$(mktemp -d)"
trap 'kill "${SERVE_PID:-}" 2>/dev/null || true; rm -rf "$WORK"' EXIT

"$RKR" gen dblp --scale tiny --seed 7 --out "$WORK/g.edges"

"$RKR" serve "$WORK/g.edges" --addr 127.0.0.1:0 --workers 2 --cache 256 \
    --merge-every 8 > "$WORK/serve.log" &
SERVE_PID=$!

# wait for the banner and scrape the bound address
for _ in $(seq 1 100); do
    ADDR="$(grep -oE '127\.0\.0\.1:[0-9]+' "$WORK/serve.log" | head -1 || true)"
    [ -n "$ADDR" ] && break
    sleep 0.1
done
[ -n "${ADDR:-}" ] || { echo "rkrd never printed its address"; cat "$WORK/serve.log"; exit 1; }
echo "rkrd up at $ADDR"

# remote result must be rank-identical to the in-process dynamic query
"$RKR" query --remote "$ADDR" --node 5 --k 4 | grep ' rank ' | sort > "$WORK/remote.txt"
"$RKR" query "$WORK/g.edges" --node 5 --k 4 --algo dynamic | grep ' rank ' | sort > "$WORK/local.txt"
diff -u "$WORK/local.txt" "$WORK/remote.txt"
echo "remote == in-process"

# a repeat is a cache hit
# (scrape ctl/query output into files before grepping: `cmd | grep -q`
# lets grep exit on the first match and the writer then dies on EPIPE)
"$RKR" query --remote "$ADDR" --node 5 --k 4 > "$WORK/repeat.txt"
grep -q 'cached: true' "$WORK/repeat.txt"
echo "cache hit observed"

# ---- metrics leg: scrape, burst, scrape ------------------------------
# Counters must be monotone across a query burst, the latency histograms
# must account for every query served, and the --prom output must be
# well-formed text exposition 0.0.4.
"$RKR" ctl "$ADDR" metrics --prom > "$WORK/prom-before.txt"
Q0="$(awk '$1 == "rkrd_queries_total" {print $2}' "$WORK/prom-before.txt")"
for n in 1 2 3 7; do
    "$RKR" query --remote "$ADDR" --node "$n" --k 3 > /dev/null
done
"$RKR" ctl "$ADDR" metrics --prom > "$WORK/prom-after.txt"
Q1="$(awk '$1 == "rkrd_queries_total" {print $2}' "$WORK/prom-after.txt")"
[ "$Q1" -eq "$((Q0 + 4))" ] || {
    echo "queries_total went $Q0 -> $Q1 over a 4-query burst"; exit 1; }
H1="$(awk '$1 ~ /^rkrd_query_seconds_count\{/ {s += $2} END {print s + 0}' "$WORK/prom-after.txt")"
[ "$H1" -eq "$Q1" ] || {
    echo "histogram total $H1 != queries served $Q1"; exit 1; }
# no counter moves backwards
awk '
    NR == FNR { if ($1 !~ /^#/ && $1 ~ /_total(\{|$)/) before[$1] = $2; next }
    ($1 in before) && ($2 + 0) < (before[$1] + 0) {
        print "counter went backwards: " $1 " " before[$1] " -> " $2; bad = 1 }
    END { exit bad }
' "$WORK/prom-before.txt" "$WORK/prom-after.txt"
# hand-rolled exposition check: every sample is `name[{labels}] value`,
# every sample family has a TYPE, and per histogram family the +Inf
# buckets sum to the _count sum
awk '
    $1 == "#" && $2 == "TYPE" { type[$3] = $4; next }
    $1 == "#" { next }
    NF == 0 { next }
    {
        if (NF != 2) { print "malformed sample: " $0; bad = 1; next }
        if ($1 !~ /^[a-zA-Z_:][a-zA-Z0-9_:]*(\{.*\})?$/) { print "bad series: " $1; bad = 1 }
        if ($2 !~ /^[-+.0-9eE]+$/ && $2 != "+Inf" && $2 != "NaN") { print "bad value: " $0; bad = 1 }
        name = $1; sub(/\{.*/, "", name)
        base = name; sub(/_(bucket|sum|count)$/, "", base)
        if (!(name in type) && !(base in type)) { print "no TYPE for " name; bad = 1 }
        if (name ~ /_bucket$/ && $1 ~ /le="\+Inf"/) infsum[base] += $2
        if (name ~ /_count$/) cntsum[base] += $2
    }
    END {
        for (b in cntsum) if (infsum[b] != cntsum[b]) {
            print b ": +Inf bucket sum " infsum[b] " != count sum " cntsum[b]; bad = 1 }
        exit bad
    }
' "$WORK/prom-after.txt"
"$RKR" ctl "$ADDR" metrics > "$WORK/metrics-table.txt"
grep -q 'rkrd_queries_total' "$WORK/metrics-table.txt" || {
    echo "human metrics table must show the counters"; exit 1; }
echo "metrics scrape valid ($Q1 queries accounted for)"

# live update round-trip: a new node at distance 0.01 from node 5 has
# rank 1 and must change the answer (the ctl ops stage + flush, so the
# commit is immediate)
NODES="$("$RKR" stats "$WORK/g.edges" | awk '/^nodes:/ {print $2}')"
"$RKR" ctl "$ADDR" add-node
"$RKR" ctl "$ADDR" add-edge 5 "$NODES" 0.01
"$RKR" query --remote "$ADDR" --node 5 --k 4 > "$WORK/remote2.full"
grep -q 'graph epoch 2' "$WORK/remote2.full" || {
    echo "two commits must reach graph epoch 2"; cat "$WORK/remote2.full"; exit 1; }
grep -q 'cached: false' "$WORK/remote2.full" || {
    echo "graph commit must strand the cached answer"; exit 1; }
grep ' rank ' "$WORK/remote2.full" | sort > "$WORK/remote2.txt"
if diff -q "$WORK/remote.txt" "$WORK/remote2.txt" >/dev/null; then
    echo "the committed update did not change the answer"; exit 1
fi
# the post-update remote answer must match an in-process rebuild of the
# updated edge list
awk -v n=$((NODES + 1)) 'NR==1 {$2=n} {print}' "$WORK/g.edges" > "$WORK/g2.edges"
echo "5 $NODES 0.01" >> "$WORK/g2.edges"
"$RKR" query "$WORK/g2.edges" --node 5 --k 4 --algo dynamic | grep ' rank ' | sort > "$WORK/local2.txt"
diff -u "$WORK/local2.txt" "$WORK/remote2.txt"
echo "update round-trip == in-process rebuild"

# batched updates from a file land too
printf 'add-node\n' > "$WORK/ups.txt"
"$RKR" update "$ADDR" --from "$WORK/ups.txt"
"$RKR" ctl "$ADDR" stats > "$WORK/stats1.txt"
grep -q "($((NODES + 2)) nodes" "$WORK/stats1.txt" || {
    echo "rkr update --from did not land"; cat "$WORK/stats1.txt"; exit 1; }
echo "file-driven updates applied"

"$RKR" ctl "$ADDR" stats
"$RKR" ctl "$ADDR" flush
"$RKR" ctl "$ADDR" shutdown

# clean exit
wait "$SERVE_PID"
SERVE_PID=""
cat "$WORK/serve.log"

# ---- kill-and-restart leg: durability through a snapshot bundle --------
# Start a snapshotted daemon, apply a live update, checkpoint, shut down,
# restart from the bundle alone, and assert the answers and stats epochs
# match the pre-restart serving state.
"$RKR" serve "$WORK/g.edges" --addr 127.0.0.1:0 --workers 2 --cache 64 \
    --merge-every 8 --snapshot "$WORK/state.rkrsnap" > "$WORK/serve2.log" &
SERVE_PID=$!
for _ in $(seq 1 100); do
    ADDR="$(grep -oE '127\.0\.0\.1:[0-9]+' "$WORK/serve2.log" | head -1 || true)"
    [ -n "$ADDR" ] && break
    sleep 0.1
done
[ -n "${ADDR:-}" ] || { echo "snapshotted rkrd never printed its address"; cat "$WORK/serve2.log"; exit 1; }
echo "snapshotted rkrd up at $ADDR"

"$RKR" ctl "$ADDR" add-node
"$RKR" ctl "$ADDR" add-edge 5 "$NODES" 0.01
"$RKR" query --remote "$ADDR" --node 5 --k 4 > "$WORK/pre-restart.full"
grep -q 'graph epoch 2' "$WORK/pre-restart.full" || {
    echo "two commits must reach graph epoch 2"; cat "$WORK/pre-restart.full"; exit 1; }
grep ' rank ' "$WORK/pre-restart.full" | sort > "$WORK/pre-restart.txt"
"$RKR" ctl "$ADDR" checkpoint | grep -q 'graph epoch 2' || {
    echo "checkpoint must report the committed epoch pair"; exit 1; }
# drain pending merges so the index epoch is stable across the restart
"$RKR" ctl "$ADDR" flush
"$RKR" ctl "$ADDR" flush
"$RKR" ctl "$ADDR" stats | awk -F: '/^index epoch/ {print $2}' | tr -d ' ' > "$WORK/epoch-before.txt"
"$RKR" ctl "$ADDR" shutdown
wait "$SERVE_PID"
SERVE_PID=""
[ -f "$WORK/state.rkrsnap" ] || { echo "shutdown left no snapshot bundle"; exit 1; }

# restart from the bundle alone: no edge file argument at all
"$RKR" serve --addr 127.0.0.1:0 --workers 2 --cache 64 \
    --merge-every 8 --snapshot "$WORK/state.rkrsnap" > "$WORK/serve3.log" &
SERVE_PID=$!
for _ in $(seq 1 100); do
    ADDR="$(grep -oE '127\.0\.0\.1:[0-9]+' "$WORK/serve3.log" | head -1 || true)"
    [ -n "$ADDR" ] && break
    sleep 0.1
done
[ -n "${ADDR:-}" ] || { echo "restarted rkrd never printed its address"; cat "$WORK/serve3.log"; exit 1; }
grep -q 'restored snapshot' "$WORK/serve3.log" || {
    echo "restart must announce the restore"; cat "$WORK/serve3.log"; exit 1; }
echo "restarted rkrd up at $ADDR"

# stats first: a query would stage discoveries the merger may fold, which
# bumps the index epoch and would make this comparison racy
"$RKR" ctl "$ADDR" stats > "$WORK/stats-after.txt"
awk -F: '/^index epoch/ {print $2}' "$WORK/stats-after.txt" | tr -d ' ' > "$WORK/epoch-after.txt"
diff -u "$WORK/epoch-before.txt" "$WORK/epoch-after.txt"
grep -q 'epoch 2 (' "$WORK/stats-after.txt" || {
    echo "stats must report graph epoch 2 after the restart"; cat "$WORK/stats-after.txt"; exit 1; }
echo "epochs survived the restart"

"$RKR" query --remote "$ADDR" --node 5 --k 4 > "$WORK/post-restart.full"
grep -q 'graph epoch 2' "$WORK/post-restart.full" || {
    echo "restart must resume at graph epoch 2"; cat "$WORK/post-restart.full"; exit 1; }
grep ' rank ' "$WORK/post-restart.full" | sort > "$WORK/post-restart.txt"
diff -u "$WORK/pre-restart.txt" "$WORK/post-restart.txt"
echo "post-restart answers == pre-restart answers"

"$RKR" ctl "$ADDR" shutdown
wait "$SERVE_PID"
SERVE_PID=""
cat "$WORK/serve3.log"

# ---- explicit-epoll leg: the Linux readiness backend end to end --------
# Force --event-loop epoll (instead of auto) and assert the banner says
# so, the answers stay rank-identical, and the event-loop counters move.
if [ "$(uname -s)" = "Linux" ]; then
    "$RKR" serve "$WORK/g.edges" --addr 127.0.0.1:0 --workers 2 --cache 64 \
        --merge-every 8 --event-loop epoll > "$WORK/serve4.log" &
    SERVE_PID=$!
    for _ in $(seq 1 100); do
        ADDR="$(grep -oE '127\.0\.0\.1:[0-9]+' "$WORK/serve4.log" | head -1 || true)"
        [ -n "$ADDR" ] && break
        sleep 0.1
    done
    [ -n "${ADDR:-}" ] || { echo "epoll rkrd never printed its address"; cat "$WORK/serve4.log"; exit 1; }
    grep -q 'epoll event loop' "$WORK/serve4.log" || {
        echo "banner must announce the epoll backend"; cat "$WORK/serve4.log"; exit 1; }
    echo "epoll rkrd up at $ADDR"

    "$RKR" query --remote "$ADDR" --node 5 --k 4 | grep ' rank ' | sort > "$WORK/epoll.txt"
    diff -u "$WORK/local.txt" "$WORK/epoll.txt"
    echo "epoll remote == in-process"

    "$RKR" ctl "$ADDR" stats > "$WORK/stats-epoll.txt"
    grep -q 'event loop:' "$WORK/stats-epoll.txt" || {
        echo "stats must report the event-loop counters"; exit 1; }
    "$RKR" ctl "$ADDR" shutdown
    wait "$SERVE_PID"
    SERVE_PID=""
    cat "$WORK/serve4.log"
else
    echo "skipping the epoll leg: $(uname -s) has no epoll"
fi

# ---- hub-distance leg: the 2-hop label oracle end to end ---------------
# Serve with --distance hub and assert the banner says so, a remote
# dynamic-hub query is rank-identical to the in-process dynamic answer,
# and the stats report label size + oracle traffic.
"$RKR" serve "$WORK/g.edges" --addr 127.0.0.1:0 --workers 2 --cache 64 \
    --merge-every 8 --distance hub > "$WORK/serve5.log" &
SERVE_PID=$!
for _ in $(seq 1 100); do
    ADDR="$(grep -oE '127\.0\.0\.1:[0-9]+' "$WORK/serve5.log" | head -1 || true)"
    [ -n "$ADDR" ] && break
    sleep 0.1
done
[ -n "${ADDR:-}" ] || { echo "hub rkrd never printed its address"; cat "$WORK/serve5.log"; exit 1; }
grep -q 'hub distance' "$WORK/serve5.log" || {
    echo "banner must announce the hub distance backend"; cat "$WORK/serve5.log"; exit 1; }
echo "hub rkrd up at $ADDR"

"$RKR" query --remote "$ADDR" --node 5 --k 4 --algo dynamic-hub \
    | grep ' rank ' | sort > "$WORK/hub.txt"
diff -u "$WORK/local.txt" "$WORK/hub.txt"
echo "hub remote == in-process"

"$RKR" ctl "$ADDR" stats > "$WORK/stats-hub.txt"
grep -Eq 'hub labels: *[1-9][0-9]* entries' "$WORK/stats-hub.txt" || {
    echo "stats must report a nonempty hub label index"; cat "$WORK/stats-hub.txt"; exit 1; }
grep -Eq 'oracle: *[1-9][0-9]* lookups' "$WORK/stats-hub.txt" || {
    echo "a dynamic-hub query must drive oracle lookups"; cat "$WORK/stats-hub.txt"; exit 1; }
"$RKR" ctl "$ADDR" metrics > "$WORK/metrics-hub.txt"
grep -q 'rkrd_hub_label_entries' "$WORK/metrics-hub.txt" || {
    echo "metrics must expose the hub label gauges"; exit 1; }
"$RKR" ctl "$ADDR" shutdown
wait "$SERVE_PID"
SERVE_PID=""
cat "$WORK/serve5.log"
echo "serve smoke OK"
